"""Persistent result store: key contract, atomicity, and quarantine.

The store's one promise is "equal key, bit-identical result" — so these
tests pin the key function (backend flips change the key, defaults and
explicit defaults spell the same key), the JSON round trip (arrays come
back exactly equal and frozen), and every validation failure path
(garbage, stolen name, stale schema, tampered payload), each of which
must quarantine-and-miss rather than crash or serve a wrong answer.  The
fault injector's ``crash-write`` rule proves a torn write can never land
under the committed name.
"""

import json
import os

import numpy as np
import pytest

from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.engine import set_default_engine
from repro.analysis.simulate import simulate_ssn, ssn_memo_key
from repro.observability import metrics as obs_metrics
from repro.service import (
    RECORD_SCHEMA_VERSION,
    ResultStore,
    canonical_request,
    result_key,
    simulation_from_record,
    simulation_record,
)
from repro.spice.mna import set_default_sparse
from repro.spice.transient import TransientOptions
from repro.testing import faults
from repro.testing.faults import FaultRule, InjectedCrash


@pytest.fixture(autouse=True)
def _clean_process_state():
    faults.clear_faults()
    set_default_engine(None)
    set_default_sparse(None)
    yield
    faults.clear_faults()
    set_default_engine(None)
    set_default_sparse(None)


@pytest.fixture
def spec(tech018):
    return DriverBankSpec(
        technology=tech018, n_drivers=2, inductance=1e-9, rise_time=0.5e-9
    )


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestKeys:
    def test_key_is_stable_and_full_length(self, spec):
        key = result_key(spec)
        assert key == result_key(spec)
        assert len(key) == 64 and set(key) <= set("0123456789abcdef")

    def test_explicit_defaults_spell_the_same_key(self, spec):
        payload = canonical_request(spec)
        assert result_key(spec) == result_key(
            spec, tstop=float(payload["tstop"]), dt=float(payload["dt"])
        )

    def test_inputs_distinguish_keys(self, spec):
        base = result_key(spec)
        assert result_key(spec, options=TransientOptions(abstol=1e-10)) != base
        assert result_key(spec, kind="montecarlo") != base
        assert result_key(spec, extra={"trials": 8}) != base
        import dataclasses

        other = dataclasses.replace(spec, n_drivers=3)
        assert result_key(other) != base

    def test_backend_default_flip_changes_the_key(self, spec):
        base = result_key(spec)
        set_default_sparse("on")
        sparse_key = result_key(spec)
        set_default_sparse(None)
        set_default_engine("batch")
        engine_key = result_key(spec)
        assert len({base, sparse_key, engine_key}) == 3

    def test_backend_env_flip_changes_the_key(self, spec, monkeypatch):
        base = result_key(spec)
        monkeypatch.setenv("REPRO_SPARSE", "on")
        sparse_key = result_key(spec)
        monkeypatch.setenv("REPRO_SPARSE", "off")
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        engine_key = result_key(spec)
        assert len({base, sparse_key, engine_key}) == 3

    def test_explicit_sparse_option_ignores_the_global_default(self, spec):
        pinned = result_key(spec, options=TransientOptions(sparse=False))
        set_default_sparse("on")
        assert result_key(spec, options=TransientOptions(sparse=False)) == pinned

    def test_store_key_and_memo_key_share_the_backend_snapshot(self, spec):
        backend_of = lambda: dict(ssn_memo_key(spec)[-1])
        payload = canonical_request(spec)
        assert dict(tuple(pair) for pair in payload["backend"]) == backend_of()


class TestRoundTrip:
    def test_simulation_round_trip_is_bit_identical(self, store, spec):
        sim = simulate_ssn(spec)
        key = result_key(spec)
        store.put(key, simulation_record(key, sim, meta={"engine": "scalar"}))
        assert key in store and len(store) == 1
        loaded = store.get_simulation(key, spec)
        assert loaded is not None
        assert loaded.peak_voltage == sim.peak_voltage
        assert loaded.peak_time == sim.peak_time
        for name in ("ssn", "inductor_current", "driver_current",
                     "input_voltage", "output_voltage"):
            fresh = getattr(sim, name)
            back = getattr(loaded, name)
            np.testing.assert_array_equal(back.t, fresh.t)
            np.testing.assert_array_equal(back.y, fresh.y)

    def test_loaded_waveforms_are_frozen(self, store, spec):
        key = result_key(spec)
        store.put_simulation(key, simulate_ssn(spec))
        loaded = store.get_simulation(key, spec)
        with pytest.raises(ValueError):
            loaded.ssn.y[0] = 1.0
        with pytest.raises(ValueError):
            loaded.ssn.t[0] = 1.0

    def test_kind_mismatch_is_a_typed_miss(self, store, spec):
        key = result_key(spec)
        store.put_simulation(key, simulate_ssn(spec))
        assert store.get_montecarlo(key) is None
        assert store.get_simulation(key, spec) is not None


class TestQuarantine:
    def _put_one(self, store, spec):
        key = result_key(spec)
        store.put_simulation(key, simulate_ssn(spec))
        return key, store.path_for(key)

    def test_garbage_record_is_quarantined(self, store, spec):
        registry = obs_metrics.enable_metrics()
        try:
            key, path = self._put_one(store, spec)
            path.write_text("{not json")
            assert store.load(key) is None
            assert [p.name for p in store.quarantined()] == [path.name]
            assert not path.exists()
            counter = registry.get("repro_store_quarantined_total",
                                   {"reason": "unreadable"})
            assert counter is not None and counter.value == 1
        finally:
            obs_metrics.disable_metrics()

    def test_non_object_record_is_quarantined(self, store, spec):
        key, path = self._put_one(store, spec)
        path.write_text(json.dumps([1, 2, 3]))
        assert store.load(key) is None
        assert store.quarantined()

    def test_schema_bump_is_quarantined(self, store, spec):
        key, path = self._put_one(store, spec)
        record = json.loads(path.read_text())
        record["schema"] = RECORD_SCHEMA_VERSION + 1
        path.write_text(json.dumps(record))
        assert store.load(key) is None
        assert store.quarantined()

    def test_key_mismatch_is_quarantined(self, store, spec):
        key, path = self._put_one(store, spec)
        stolen = result_key(spec, extra={"other": 1})
        stolen_path = store.path_for(stolen)
        stolen_path.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, stolen_path)
        assert store.load(stolen) is None
        assert store.quarantined()

    def test_checksum_tamper_is_quarantined(self, store, spec):
        key, path = self._put_one(store, spec)
        record = json.loads(path.read_text())
        record["peak_voltage"] = record["peak_voltage"] * 2.0
        path.write_text(json.dumps(record))
        assert store.load(key) is None
        assert store.quarantined()

    def test_quarantine_then_rewrite_recovers(self, store, spec):
        key, path = self._put_one(store, spec)
        path.write_text("torn")
        assert store.load(key) is None
        store.put_simulation(key, simulate_ssn(spec))
        assert store.get_simulation(key, spec) is not None


class TestCrashWrite:
    def test_injected_crash_leaves_no_record_and_no_temp_file(self, store, spec):
        sim = simulate_ssn(spec)
        key = result_key(spec)
        faults.install_faults([FaultRule(kind="crash-write", phase="store")],
                              mirror_env=False)
        with pytest.raises(InjectedCrash):
            store.put_simulation(key, sim)
        assert key not in store
        assert store.load(key) is None
        leftovers = [p for p in store.root.rglob("*") if p.is_file()]
        assert leftovers == []
        faults.clear_faults()
        store.put_simulation(key, sim)
        loaded = store.get_simulation(key, spec)
        assert loaded is not None and loaded.peak_voltage == sim.peak_voltage

    def test_store_scope_does_not_catch_other_phases(self, store, spec):
        faults.install_faults(
            [FaultRule(kind="crash-write", phase="checkpointing")],
            mirror_env=False)
        key = result_key(spec)
        store.put_simulation(key, simulate_ssn(spec))
        assert store.get_simulation(key, spec) is not None

    def test_record_rewrite_is_idempotent(self, store, spec):
        sim = simulate_ssn(spec)
        key = result_key(spec)
        first = store.put_simulation(key, sim).read_text()
        second = store.put_simulation(key, sim).read_text()
        assert first == second
        record = json.loads(first)
        rebuilt = simulation_from_record(record, spec)
        np.testing.assert_array_equal(rebuilt.ssn.y, sim.ssn.y)
