"""Tests for the tapered pre-driver chain substrate."""

import pytest

from repro.analysis import BufferChainSpec, build_buffer_chain, simulate_buffer_chain
from repro.analysis.buffer_chain import gate_capacitance
from repro.process import TSMC018


@pytest.fixture
def spec():
    return BufferChainSpec(technology=TSMC018, n_drivers=4)


class TestSpec:
    def test_stage_strengths_taper(self, spec):
        assert spec.stage_strength(1) == pytest.approx(
            spec.first_stage_strength * spec.taper
        )

    def test_odd_stage_count_rejected(self):
        with pytest.raises(ValueError, match="even"):
            BufferChainSpec(technology=TSMC018, n_drivers=4, stages=3)

    def test_taper_must_exceed_one(self):
        with pytest.raises(ValueError):
            BufferChainSpec(technology=TSMC018, n_drivers=4, taper=1.0)

    def test_gate_capacitance_positive_and_tiny(self):
        c = gate_capacitance(TSMC018, 15e-6, 33e-6)
        assert 1e-16 < c < 1e-12


class TestBuild:
    def test_netlist_structure(self, spec):
        circuit = build_buffer_chain(spec)
        names = {el.name for el in circuit.elements}
        assert {"Xn1", "Xp1", "Xn2", "Xp2", "Cg1", "Cg2", "M1", "Lgnd", "CL1"} <= names

    def test_final_gate_node_feeds_bank(self, spec):
        circuit = build_buffer_chain(spec)
        bank = circuit.element("M1")
        assert circuit.node_name(bank.nodes[1]) == f"a{spec.stages}"

    def test_internal_nodes_alternate_rails(self, spec):
        circuit = build_buffer_chain(spec)
        assert circuit.element("Cg1").ic == pytest.approx(TSMC018.vdd)
        assert circuit.element("Cg2").ic == 0.0


class TestSimulation:
    @pytest.fixture(scope="class")
    def sim(self):
        return simulate_buffer_chain(
            BufferChainSpec(technology=TSMC018, n_drivers=4, input_rise_time=0.3e-9)
        )

    def test_final_gate_swings_full_rail(self, sim):
        assert sim.final_gate.value_at(0.0) == pytest.approx(0.0, abs=0.05)
        assert sim.final_gate.y[-1] == pytest.approx(TSMC018.vdd, abs=0.05)

    def test_ssn_produced(self, sim):
        assert 0.05 < sim.peak_voltage < TSMC018.vdd

    def test_gate_monotone_rising(self, sim):
        import numpy as np

        # Allow tiny numerical ripple but no real non-monotonicity.
        y = sim.final_gate.y
        assert np.min(np.diff(y)) > -0.02
