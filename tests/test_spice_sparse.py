"""Sparse-tier tests: CSC assembly + splu against the dense LAPACK path.

The sparse linear-algebra tier (:mod:`repro.spice.mna`) must be invisible
except for speed: identical step sequences and waveforms within 1e-9 V of
the dense path on both the paper's driver-bank circuits and the large
RC-ladder workloads the tier exists for, graceful dense degradation when
scipy is absent, and honest telemetry about which backend actually ran.
"""

import dataclasses
import warnings

import numpy as np
import pytest

from repro.analysis.driver_bank import DriverBankSpec, build_driver_bank
from repro.analysis.simulate import default_stop_time, default_time_step
from repro.spice import mna
from repro.spice.mna import (
    SPARSE_AUTO_THRESHOLD,
    resolve_sparse,
    set_default_sparse,
    sparse_available,
)
from repro.spice.transient import TransientOptions, transient
from repro.testing.netlists import ladder_circuit

#: Sparse waveforms must stay within this of the dense path.
PARITY_TOL = 1e-9

needs_scipy = pytest.mark.skipif(
    not sparse_available(), reason="scipy.sparse not importable"
)


def _run_both(circuit, tstop, dt, **opt_kwargs):
    dense = transient(circuit, tstop, dt,
                      options=TransientOptions(sparse=False, **opt_kwargs))
    sparse = transient(circuit, tstop, dt,
                       options=TransientOptions(sparse=True, **opt_kwargs))
    return dense, sparse


def _assert_waveform_parity(dense, sparse, tol=PARITY_TOL):
    assert np.array_equal(dense.times, sparse.times), "step sequences diverged"
    for node in dense.node_names:
        dv = np.max(np.abs(dense.voltage(node).y - sparse.voltage(node).y))
        assert dv <= tol, f"node {node}: |dV| = {dv:.3e} V"


@needs_scipy
class TestGoldenParity:
    def test_driver_bank_sweep_parity(self, tech018):
        """Fig. 3 style circuits match dense bit-for-bit in step structure."""
        base = DriverBankSpec(technology=tech018, n_drivers=1,
                              inductance=5e-9, rise_time=0.2e-9)
        for n in (1, 5, 11):
            spec = dataclasses.replace(base, n_drivers=n)
            circuit = build_driver_bank(spec)
            tstop = default_stop_time(spec)
            dt = 4.0 * default_time_step(spec)
            dense, sparse = _run_both(circuit, tstop, dt)
            _assert_waveform_parity(dense, sparse)
            assert sparse.telemetry.newton_solves == dense.telemetry.newton_solves
            assert sparse.telemetry.newton_iterations == (
                dense.telemetry.newton_iterations)

    def test_large_ladder_parity(self):
        """A 500-section ladder (~503 unknowns) — the tier's home turf."""
        circuit = ladder_circuit(500)
        dense, sparse = _run_both(circuit, 0.3e-9, 0.05e-9)
        _assert_waveform_parity(dense, sparse)
        assert sparse.telemetry.sparse_factorizations > 0
        assert sparse.telemetry.sparse_pattern_reuses > 0

    def test_linear_ladder_cached_factorization(self):
        """Driverless (purely linear) ladders reuse one splu per phase."""
        circuit = ladder_circuit(200, driver=False)
        dense, sparse = _run_both(circuit, 0.4e-9, 0.05e-9)
        _assert_waveform_parity(dense, sparse)
        tel = sparse.telemetry
        assert tel.lu_cache_hits > 0
        # Far fewer factorizations than solves: the cache carried the run.
        assert tel.sparse_factorizations < tel.newton_solves

    def test_adaptive_sparse_parity(self):
        """Adaptive runs match in step structure and waveforms.  The step
        grids agree only to rounding (splu and LAPACK solutions differ at
        the last ulp, which the step controller sees through the LTE cube
        root), so times are compared with a tight tolerance, not bitwise."""
        circuit = ladder_circuit(160)
        dense, sparse = _run_both(circuit, 0.3e-9, 0.05e-9, adaptive=True)
        assert len(dense.times) == len(sparse.times)
        assert np.max(np.abs(dense.times - sparse.times)) <= 1e-18
        for node in dense.node_names:
            dv = np.max(np.abs(dense.voltage(node).y - sparse.voltage(node).y))
            assert dv <= PARITY_TOL, f"node {node}: |dV| = {dv:.3e} V"
        assert sparse.telemetry.lte_rejections == dense.telemetry.lte_rejections
        assert sparse.telemetry.accepted_steps == dense.telemetry.accepted_steps


@needs_scipy
class TestBackendTelemetry:
    def test_sparse_backend_recorded(self):
        result = transient(ladder_circuit(8), 0.2e-9, 0.05e-9,
                           options=TransientOptions(sparse=True))
        assert result.telemetry.extras.get("backend_sparse_splu") == 1
        assert "linear-algebra backends" in result.telemetry.format_report()

    def test_dense_backend_recorded(self):
        result = transient(ladder_circuit(8), 0.2e-9, 0.05e-9,
                           options=TransientOptions(sparse=False))
        assert result.telemetry.extras.get("backend_dense_lu") == 1

    def test_backend_keys_round_trip_from_dict(self):
        result = transient(ladder_circuit(8), 0.2e-9, 0.05e-9,
                           options=TransientOptions(sparse=True))
        clone = type(result.telemetry).from_dict(result.telemetry.as_dict())
        assert clone.extras.get("backend_sparse_splu") == 1


class TestResolution:
    def teardown_method(self):
        set_default_sparse(None)

    def test_threshold_heuristic(self, monkeypatch):
        monkeypatch.delenv(mna.SPARSE_ENV, raising=False)
        small = resolve_sparse("auto", SPARSE_AUTO_THRESHOLD - 1)
        large = resolve_sparse("auto", SPARSE_AUTO_THRESHOLD)
        assert small is False
        assert large is sparse_available()

    def test_process_default_overrides_threshold(self, monkeypatch):
        monkeypatch.delenv(mna.SPARSE_ENV, raising=False)
        set_default_sparse("on")
        assert resolve_sparse("auto", 2) is sparse_available()
        set_default_sparse("off")
        assert resolve_sparse("auto", 10 * SPARSE_AUTO_THRESHOLD) is False

    def test_environment_fallback(self, monkeypatch):
        monkeypatch.setenv(mna.SPARSE_ENV, "on")
        assert resolve_sparse("auto", 2) is sparse_available()
        monkeypatch.setenv(mna.SPARSE_ENV, "off")
        assert resolve_sparse("auto", 10 * SPARSE_AUTO_THRESHOLD) is False

    def test_invalid_environment_warns_and_uses_auto(self, monkeypatch):
        monkeypatch.setenv(mna.SPARSE_ENV, "banana")
        with pytest.warns(RuntimeWarning, match="REPRO_SPARSE"):
            assert resolve_sparse("auto", 2) is False

    def test_explicit_option_beats_default(self, monkeypatch):
        monkeypatch.delenv(mna.SPARSE_ENV, raising=False)
        set_default_sparse("on")
        assert resolve_sparse(False, 10 * SPARSE_AUTO_THRESHOLD) is False

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            set_default_sparse("sideways")
        with pytest.raises(ValueError):
            TransientOptions(sparse="sideways")


class TestNoScipyFallback:
    def test_sparse_request_degrades_to_dense(self, monkeypatch):
        """Without scipy the sparse tier warns once and runs dense."""
        monkeypatch.setattr(mna, "_splu", None)
        monkeypatch.setattr(mna, "_sparse", None)
        circuit = ladder_circuit(12)
        with pytest.warns(RuntimeWarning, match="falling back to dense"):
            result = transient(circuit, 0.2e-9, 0.05e-9,
                               options=TransientOptions(sparse=True))
        assert result.telemetry.sparse_factorizations == 0
        assert result.telemetry.extras.get("backend_dense_lu") == 1
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # dense must not warn
            reference = transient(circuit, 0.2e-9, 0.05e-9,
                                  options=TransientOptions(sparse=False))
        _assert_waveform_parity(reference, result, tol=0.0)

    def test_auto_never_engages_without_scipy(self, monkeypatch):
        monkeypatch.delenv(mna.SPARSE_ENV, raising=False)
        monkeypatch.setattr(mna, "_splu", None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert resolve_sparse("auto", 10 * SPARSE_AUTO_THRESHOLD) is False
