"""Golden-parity, telemetry and compatibility tests for the batched engine.

The lockstep ensemble engine (:func:`repro.spice.batch.batch_transient`)
simulates many same-topology circuits through one vectorized Newton loop.
It must reproduce the scalar fast path to within 1e-9 V / 1e-9 A per
instance — the same contract ``test_spice_fastpath`` holds the fast path
to against the seed engine — and its per-instance telemetry must agree
with the scalar path's counters, so ensemble observability survives the
vectorization.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.driver_bank import DriverBankSpec, build_driver_bank
from repro.analysis.simulate import default_stop_time, default_time_step
from repro.spice import Circuit, Ramp
from repro.spice.batch import (
    BatchIncompatibleError,
    batch_transient,
    lockstep_signature,
)
from repro.spice.transient import TransientOptions, transient

#: Batched waveforms must stay within this of the scalar fast path.
PARITY_TOL = 1e-9


def _driver_specs(tech, counts, **kwargs):
    base = DriverBankSpec(
        technology=tech, n_drivers=1, inductance=5e-9, rise_time=0.2e-9, **kwargs
    )
    return [dataclasses.replace(base, n_drivers=n) for n in counts]


def _grid(spec, coarsen=4.0):
    return default_stop_time(spec), coarsen * default_time_step(spec)


def _assert_results_match(scalar, batched, tol=PARITY_TOL):
    for s, b in zip(scalar, batched):
        assert np.array_equal(s.times, b.times), "step sequences diverged"
        for node in s.node_names:
            dv = np.max(np.abs(s.voltage(node).y - b.voltage(node).y))
            assert dv <= tol, f"node {node}: |dV| = {dv:.3e} V"


class TestLockstepSignature:
    def test_same_topology_different_parameters_share_signature(self, tech018):
        specs = _driver_specs(tech018, [1, 7, 19])
        sigs = {lockstep_signature(build_driver_bank(s)) for s in specs}
        assert len(sigs) == 1

    def test_different_topologies_differ(self, tech018):
        with_c, without_c = _driver_specs(tech018, [4, 4])
        with_c = dataclasses.replace(with_c, capacitance=2e-12)
        assert lockstep_signature(build_driver_bank(with_c)) != lockstep_signature(
            build_driver_bank(without_c)
        )

    def test_different_breakpoints_differ(self, tech018):
        fast_edge, slow_edge = _driver_specs(tech018, [4, 4])
        slow_edge = dataclasses.replace(slow_edge, rise_time=0.4e-9)
        assert lockstep_signature(build_driver_bank(fast_edge)) != lockstep_signature(
            build_driver_bank(slow_edge)
        )


class TestGoldenParity:
    @pytest.mark.parametrize("method", ["trap", "be"])
    def test_collapsed_driver_bank_ensemble(self, tech018, method):
        specs = _driver_specs(tech018, [1, 5, 13, 29])
        tstop, dt = _grid(specs[0])
        options = TransientOptions(method=method)
        scalar = [
            transient(build_driver_bank(s), tstop, dt, options=options) for s in specs
        ]
        batched = batch_transient(
            [build_driver_bank(s) for s in specs], tstop, dt, options=options
        )
        _assert_results_match(scalar, batched)
        assert all(b.telemetry.batch_fallbacks == 0 for b in batched)

    def test_multi_device_lc_bank_dense_path(self, tech018):
        """Non-collapsed banks have several MOSFET banks per circuit, which
        exercises the dense stamp/solve lane instead of the rank-1 update.
        Instances vary in inductance (value-only, so topology is shared)."""
        specs = [
            dataclasses.replace(
                s, capacitance=2e-12, collapse=False, n_drivers=3, inductance=l
            )
            for s, l in zip(_driver_specs(tech018, [3, 3]), [3e-9, 8e-9])
        ]
        tstop, dt = _grid(specs[0], coarsen=8.0)
        scalar = [transient(build_driver_bank(s), tstop, dt) for s in specs]
        batched = batch_transient([build_driver_bank(s) for s in specs], tstop, dt)
        _assert_results_match(scalar, batched)

    def test_linear_only_ensemble(self):
        def make(r):
            c = Circuit("rlc")
            c.vsource("Vin", "in", "0", Ramp(0.0, 1.8, 0.1e-9, 0.2e-9))
            c.resistor("R1", "in", "mid", r)
            c.inductor("L1", "mid", "out", 4e-9, ic=0.0)
            c.capacitor("C1", "out", "0", 3e-12, ic=0.0)
            return c

        values = [10.0, 25.0, 80.0]
        scalar = [transient(make(r), 2e-9, 5e-12) for r in values]
        batched = batch_transient([make(r) for r in values], 2e-9, 5e-12)
        _assert_results_match(scalar, batched)
        for s, b in zip(scalar, batched):
            di = np.max(np.abs(s.current("L1").y - b.current("L1").y))
            assert di <= PARITY_TOL

    def test_branch_currents_match(self, tech018):
        specs = _driver_specs(tech018, [3, 9])
        tstop, dt = _grid(specs[0])
        scalar = [transient(build_driver_bank(s), tstop, dt) for s in specs]
        batched = batch_transient([build_driver_bank(s) for s in specs], tstop, dt)
        for s, b in zip(scalar, batched):
            di = np.max(np.abs(s.current("Lgnd").y - b.current("Lgnd").y))
            assert di <= PARITY_TOL, f"|dI| = {di:.3e} A"


class TestTelemetry:
    def test_per_instance_counters_match_scalar_path(self, tech018):
        """Satellite contract: batched runs report per-instance Newton
        iteration counts that sum to the scalar-path totals."""
        specs = _driver_specs(tech018, [1, 5, 13, 21])
        tstop, dt = _grid(specs[0])
        scalar = [transient(build_driver_bank(s), tstop, dt) for s in specs]
        batched = batch_transient([build_driver_bank(s) for s in specs], tstop, dt)

        for s, b in zip(scalar, batched):
            assert b.telemetry.newton_solves == s.telemetry.newton_solves
            assert b.telemetry.newton_iterations == s.telemetry.newton_iterations
            assert b.telemetry.accepted_steps == s.telemetry.accepted_steps

        batched_total = sum(b.telemetry.newton_iterations for b in batched)
        scalar_total = sum(s.telemetry.newton_iterations for s in scalar)
        assert batched_total == scalar_total

    def test_no_unrecovered_failures_on_nominal_workload(self, tech018):
        specs = _driver_specs(tech018, [2, 8])
        tstop, dt = _grid(specs[0])
        batched = batch_transient([build_driver_bank(s) for s in specs], tstop, dt)
        assert all(b.telemetry.unrecovered_failures == 0 for b in batched)


class TestCompatibilityGuards:
    def test_mixed_topologies_raise(self, tech018):
        with_c, without_c = _driver_specs(tech018, [4, 4])
        with_c = dataclasses.replace(with_c, capacitance=2e-12)
        circuits = [build_driver_bank(with_c), build_driver_bank(without_c)]
        with pytest.raises(BatchIncompatibleError):
            batch_transient(circuits, 1e-9, 1e-12)

    def test_unbatchable_options_raise(self, tech018):
        specs = _driver_specs(tech018, [2, 4])
        circuits = [build_driver_bank(s) for s in specs]
        with pytest.raises(BatchIncompatibleError):
            batch_transient(circuits, 1e-9, 1e-12,
                            options=TransientOptions(legacy_reference=True))

    def test_adaptive_is_batchable(self, tech018):
        """Adaptive stepping runs in lockstep now (see
        tests/test_spice_batch_adaptive.py for the parity suite)."""
        specs = _driver_specs(tech018, [2, 4])
        circuits = [build_driver_bank(s) for s in specs]
        results = batch_transient(circuits, 1e-9, 1e-12,
                                  options=TransientOptions(adaptive=True))
        assert len(results) == len(circuits)
        assert all(r.telemetry.accepted_steps > 0 for r in results)

    def test_empty_ensemble_is_empty(self):
        assert batch_transient([], 1e-9, 1e-12) == []

    def test_bad_grid_raises(self, tech018):
        circuits = [build_driver_bank(s) for s in _driver_specs(tech018, [2])]
        with pytest.raises(ValueError):
            batch_transient(circuits, 0.0, 1e-12)
        with pytest.raises(ValueError):
            batch_transient(circuits, 1e-9, -1e-12)


class TestScalarFallback:
    def test_failed_instances_rerun_on_scalar_ladder(self, tech018, monkeypatch):
        """When the lockstep loop cannot converge an instance, that instance
        is transparently re-run on the scalar engine (which owns the
        step-halving/gmin recovery ladder) and flagged in telemetry.  The
        batched solves are sabotaged to return non-finite iterates, which
        fails every instance out of the lockstep loop deterministically."""
        from repro.spice import batch as batch_mod

        monkeypatch.setattr(batch_mod._Rank1Lane, "prepare",
                            lambda self, *a, **k: None)
        monkeypatch.setattr(batch_mod, "_solve_stack",
                            lambda A, z: np.full(z.shape, np.nan))

        specs = _driver_specs(tech018, [3, 11])
        tstop, dt = _grid(specs[0])
        scalar = [transient(build_driver_bank(s), tstop, dt) for s in specs]
        batched = batch_transient([build_driver_bank(s) for s in specs], tstop, dt)

        # Fallback results come from the scalar engine itself: bitwise equal.
        _assert_results_match(scalar, batched, tol=0.0)
        assert all(b.telemetry.batch_fallbacks == 1 for b in batched)


class TestParameterBankValidation:
    """Satellite contract: NaN/inf parameter banks are rejected at bank
    construction with an error naming the offending element, parameter and
    batch instance — not deep inside the Newton loop as an opaque
    non-finite iterate."""

    @staticmethod
    def _rlc(r=10.0, l=4e-9, c=3e-12):
        circuit = Circuit("rlc")
        circuit.vsource("Vin", "in", "0", Ramp(0.0, 1.8, 0.1e-9, 0.2e-9))
        circuit.resistor("R1", "in", "mid", r)
        circuit.inductor("L1", "mid", "out", l, ic=0.0)
        circuit.capacitor("C1", "out", "0", c, ic=0.0)
        return circuit

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_resistance_names_element_and_instance(self, bad):
        circuits = [self._rlc(), self._rlc(r=bad)]
        with pytest.raises(BatchIncompatibleError) as err:
            batch_transient(circuits, 1e-9, 5e-12)
        message = str(err.value)
        assert "R1" in message and "instance 1" in message

    def test_non_finite_capacitance_names_element_and_instance(self):
        circuits = [self._rlc(c=float("nan")), self._rlc()]
        with pytest.raises(BatchIncompatibleError) as err:
            batch_transient(circuits, 1e-9, 5e-12)
        message = str(err.value)
        assert "C1" in message and "instance 0" in message

    def test_non_finite_inductance_names_element_and_instance(self):
        circuits = [self._rlc(), self._rlc(l=float("inf"))]
        with pytest.raises(BatchIncompatibleError) as err:
            batch_transient(circuits, 1e-9, 5e-12)
        message = str(err.value)
        assert "L1" in message and "instance 1" in message

    def test_finite_banks_still_simulate(self):
        results = batch_transient([self._rlc(), self._rlc(r=25.0)], 1e-9, 5e-12)
        assert len(results) == 2
