"""Unit tests for the SSN-aware design helpers."""

import pytest

from repro.core import (
    AsdmParameters,
    InductiveSsnModel,
    LcSsnModel,
    max_simultaneous_drivers,
    required_ground_pads,
    required_rise_time,
    skew_schedule,
)


@pytest.fixture
def params():
    return AsdmParameters(k=5.4e-3, v0=0.60, lam=1.04)


VDD = 1.8
L = 5e-9
TR = 0.5e-9


class TestMaxDrivers:
    def test_result_meets_budget(self, params):
        budget = 0.5
        n = max_simultaneous_drivers(budget, params, L, VDD, TR)
        assert n >= 1
        assert InductiveSsnModel(params, n, L, VDD, TR).peak_voltage() <= budget

    def test_one_more_driver_violates(self, params):
        budget = 0.5
        n = max_simultaneous_drivers(budget, params, L, VDD, TR)
        assert InductiveSsnModel(params, n + 1, L, VDD, TR).peak_voltage() > budget

    def test_zero_when_single_driver_too_noisy(self, params):
        n = max_simultaneous_drivers(0.01, params, 200e-9, VDD, 0.05e-9)
        assert n == 0

    def test_monotone_in_budget(self, params):
        n_tight = max_simultaneous_drivers(0.2, params, L, VDD, TR)
        n_loose = max_simultaneous_drivers(0.6, params, L, VDD, TR)
        assert n_loose >= n_tight


class TestRequiredRiseTime:
    def test_result_meets_budget(self, params):
        tr = required_rise_time(0.4, params, 8, L, VDD)
        peak = InductiveSsnModel(params, 8, L, VDD, tr).peak_voltage()
        assert peak == pytest.approx(0.4, rel=1e-6)

    def test_slower_for_more_drivers(self, params):
        tr8 = required_rise_time(0.4, params, 8, L, VDD)
        tr16 = required_rise_time(0.4, params, 16, L, VDD)
        assert tr16 == pytest.approx(2 * tr8, rel=1e-9)  # same Z needed

    def test_invalid_n(self, params):
        with pytest.raises(ValueError):
            required_rise_time(0.4, params, 0, L, VDD)


class TestRequiredGroundPads:
    def test_meets_budget_with_lc_model(self, params):
        rec = required_ground_pads(0.3, params, 8, 5e-9, 1e-12, VDD, TR)
        model = LcSsnModel(
            params, 8, rec.inductance, rec.capacitance, VDD, TR
        )
        assert model.peak_voltage() <= 0.3
        assert rec.peak_noise == pytest.approx(model.peak_voltage())

    def test_minimality(self, params):
        rec = required_ground_pads(0.3, params, 8, 5e-9, 1e-12, VDD, TR)
        if rec.pads > 1:
            fewer = LcSsnModel(
                params, 8, 5e-9 / (rec.pads - 1), 1e-12 * (rec.pads - 1), VDD, TR
            )
            assert fewer.peak_voltage() > 0.3

    def test_unreachable_budget_raises(self, params):
        with pytest.raises(ValueError, match="unreachable"):
            required_ground_pads(1e-4, params, 64, 5e-9, 1e-12, VDD, TR, max_pads=4)

    def test_pad_parasitics_scaling(self, params):
        rec = required_ground_pads(0.3, params, 8, 5e-9, 1e-12, VDD, TR)
        assert rec.inductance == pytest.approx(5e-9 / rec.pads)
        assert rec.capacitance == pytest.approx(1e-12 * rec.pads)


class TestSkewSchedule:
    def test_groups_cover_all_drivers(self, params):
        plan = skew_schedule(0.4, params, 32, L, VDD, TR)
        assert plan.group_size * plan.groups >= 32

    def test_per_group_noise_within_budget(self, params):
        plan = skew_schedule(0.4, params, 32, L, VDD, TR)
        assert plan.peak_noise <= 0.4

    def test_offsets_separated_by_rise_time(self, params):
        plan = skew_schedule(0.4, params, 32, L, VDD, TR)
        diffs = [
            b - a for a, b in zip(plan.group_offsets, plan.group_offsets[1:])
        ]
        assert all(d == pytest.approx(TR) for d in diffs)

    def test_single_group_when_budget_loose(self, params):
        plan = skew_schedule(1.0, params, 4, L, VDD, TR)
        assert plan.groups == 1
        assert plan.added_latency == 0.0

    def test_impossible_budget_raises(self, params):
        with pytest.raises(ValueError, match="single driver"):
            skew_schedule(0.001, params, 8, 500e-9, VDD, 0.01e-9)

    def test_invalid_total(self, params):
        with pytest.raises(ValueError):
            skew_schedule(0.4, params, 0, L, VDD, TR)
