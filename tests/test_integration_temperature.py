"""Integration tests for E18: SSN across temperature corners."""

import pytest

from repro.devices import BsimLikeMosfet, BsimLikeParameters
from repro.experiments import temperature


@pytest.fixture(scope="module")
def result():
    return temperature.run(n_drivers=4, temperatures=(233.0, 398.0))


class TestDeviceTemperature:
    def test_cold_device_stronger(self):
        cold = BsimLikeMosfet(BsimLikeParameters(temperature=233.0))
        hot = BsimLikeMosfet(BsimLikeParameters(temperature=398.0))
        assert cold.ids(1.8, 1.8) > 1.3 * hot.ids(1.8, 1.8)

    def test_threshold_drops_with_temperature(self):
        cold = BsimLikeMosfet(BsimLikeParameters(temperature=233.0))
        hot = BsimLikeMosfet(BsimLikeParameters(temperature=398.0))
        assert float(cold.threshold()) > float(hot.threshold())

    def test_reference_temperature_unchanged(self):
        """Adding the knob must not move the nominal 300 K model."""
        p = BsimLikeParameters()
        assert p.vth0_t == p.vth0
        assert p.mu0_t == p.mu0

    def test_implausible_temperature_rejected(self):
        with pytest.raises(ValueError):
            BsimLikeParameters(temperature=50.0)


class TestTemperatureExperiment:
    def test_cold_corner_is_worst(self, result):
        assert result.coldest().simulated_peak > 1.2 * result.hottest().simulated_peak

    def test_k_tracks_mobility(self, result):
        assert result.coldest().params.k > result.hottest().params.k

    def test_v0_tracks_threshold(self, result):
        assert result.coldest().params.v0 > result.hottest().params.v0

    def test_refit_model_accurate_at_each_corner(self, result):
        assert result.max_abs_error() < 6.0

    def test_report_renders(self, result):
        text = result.format_report()
        assert "Cold corner" in text
