"""Property-based tests (hypothesis) for the closed-form SSN models."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AsdmParameters,
    InductiveSsnModel,
    LcSsnModel,
    circuit_figure,
    critical_capacitance,
    damping_ratio,
    peak_noise_from_figure,
)

#: Physically sensible parameter ranges for the strategies.
ks = st.floats(min_value=1e-4, max_value=0.1)
v0s = st.floats(min_value=0.2, max_value=1.0)
lams = st.floats(min_value=1.0, max_value=1.5)
ns = st.integers(min_value=1, max_value=64)
inductances = st.floats(min_value=0.1e-9, max_value=50e-9)
capacitances = st.floats(min_value=0.05e-12, max_value=100e-12)
rise_times = st.floats(min_value=0.05e-9, max_value=5e-9)


def make_params(k, v0, lam):
    return AsdmParameters(k=k, v0=v0, lam=lam)


class TestEqn10Properties:
    @given(k=ks, v0=v0s, lam=lams, z1=st.floats(1e-3, 1e2), z2=st.floats(1e-3, 1e2))
    def test_monotone_in_z(self, k, v0, lam, z1, z2):
        params = make_params(k, v0, lam)
        lo, hi = sorted((z1, z2))
        if hi / lo < 1 + 1e-9:
            return
        assert peak_noise_from_figure(lo, params, 1.8) <= peak_noise_from_figure(
            hi, params, 1.8
        ) * (1 + 1e-12)

    @given(k=ks, v0=v0s, lam=lams, z=st.floats(1e-3, 1e3))
    def test_bounded_by_supremum(self, k, v0, lam, z):
        params = make_params(k, v0, lam)
        assert peak_noise_from_figure(z, params, 1.8) < (1.8 - v0) / lam

    @given(k=ks, v0=v0s, lam=lams, n=ns, l=inductances, tr=rise_times)
    def test_figure_reformulation_exact(self, k, v0, lam, n, l, tr):
        """Eqn 10 == Eqn 7 for every configuration."""
        params = make_params(k, v0, lam)
        model = InductiveSsnModel(params, n, l, 1.8, tr)
        z = circuit_figure(n, l, 1.8 / tr)
        assert peak_noise_from_figure(z, params, 1.8) == pytest.approx(
            model.peak_voltage(), rel=1e-9
        )


class TestInductiveModelProperties:
    @given(k=ks, v0=v0s, lam=lams, n=ns, l=inductances, tr=rise_times)
    def test_waveform_nonnegative_and_monotone(self, k, v0, lam, n, l, tr):
        model = InductiveSsnModel(make_params(k, v0, lam), n, l, 1.8, tr)
        ts = np.linspace(0.0, tr, 200)
        v = np.asarray(model.voltage(ts))
        assert np.all(v >= 0)
        assert np.all(np.diff(v) >= -1e-12)

    @given(k=ks, v0=v0s, lam=lams, n=ns, l=inductances, tr=rise_times)
    def test_peak_is_supremum_of_waveform(self, k, v0, lam, n, l, tr):
        model = InductiveSsnModel(make_params(k, v0, lam), n, l, 1.8, tr)
        ts = np.linspace(0.0, tr, 500)
        assert model.peak_voltage() >= np.nanmax(np.asarray(model.voltage(ts))) - 1e-12

    @given(k=ks, v0=v0s, lam=lams, n=st.integers(1, 32), l=inductances, tr=rise_times)
    def test_more_drivers_more_noise(self, k, v0, lam, n, l, tr):
        params = make_params(k, v0, lam)
        small = InductiveSsnModel(params, n, l, 1.8, tr).peak_voltage()
        large = InductiveSsnModel(params, 2 * n, l, 1.8, tr).peak_voltage()
        assert large > small

    @given(k=ks, v0=v0s, lam=lams, n=ns, l=inductances, tr=rise_times)
    def test_current_nonnegative(self, k, v0, lam, n, l, tr):
        model = InductiveSsnModel(make_params(k, v0, lam), n, l, 1.8, tr)
        ts = np.linspace(0.0, tr, 200)
        assert np.all(np.asarray(model.driver_current(ts)) >= 0)


class TestLcModelProperties:
    @settings(max_examples=60)
    @given(k=ks, v0=v0s, lam=lams, n=ns, l=inductances, c=capacitances, tr=rise_times)
    def test_voltage_finite_on_window(self, k, v0, lam, n, l, c, tr):
        model = LcSsnModel(make_params(k, v0, lam), n, l, c, 1.8, tr)
        ts = np.linspace(0.0, tr, 200)
        assert np.all(np.isfinite(np.asarray(model.voltage(ts))))

    @settings(max_examples=60)
    @given(k=ks, v0=v0s, lam=lams, n=ns, l=inductances, c=capacitances, tr=rise_times)
    def test_peak_at_least_window_end(self, k, v0, lam, n, l, c, tr):
        """Table 1 maxima can never be below the window-end value."""
        model = LcSsnModel(make_params(k, v0, lam), n, l, c, 1.8, tr)
        end_value = float(model.voltage(model.ramp_end_time))
        assert model.peak_voltage() >= end_value - 1e-12

    @settings(max_examples=60)
    @given(k=ks, v0=v0s, lam=lams, n=ns, l=inductances, c=capacitances, tr=rise_times)
    def test_peak_bounded_by_twice_asymptote(self, k, v0, lam, n, l, c, tr):
        """Under-damped overshoot never exceeds 2*Vss (zero-damping limit)."""
        model = LcSsnModel(make_params(k, v0, lam), n, l, c, 1.8, tr)
        assert model.peak_voltage() <= 2.0 * model.asymptotic_voltage + 1e-12

    @settings(max_examples=40)
    @given(k=ks, v0=v0s, lam=lams, n=ns, l=inductances, tr=rise_times,
           ratio=st.floats(0.3, 3.0))
    def test_continuity_across_damping_boundary(self, k, v0, lam, n, l, tr, ratio):
        """Peak voltage is continuous in C through the critical point."""
        params = make_params(k, v0, lam)
        c_crit = critical_capacitance(params, n, l)
        eps = 1e-6
        just_under = LcSsnModel(params, n, l, c_crit * (1 - eps), 1.8, tr)
        critical = LcSsnModel(params, n, l, c_crit, 1.8, tr)
        just_over = LcSsnModel(params, n, l, c_crit * (1 + eps), 1.8, tr)
        assert just_under.peak_voltage() == pytest.approx(
            critical.peak_voltage(), rel=1e-3
        )
        assert just_over.peak_voltage() == pytest.approx(
            critical.peak_voltage(), rel=1e-3
        )

    @settings(max_examples=40)
    @given(k=ks, v0=v0s, lam=lams, n=ns, l=inductances, c=capacitances, tr=rise_times)
    def test_lc_ode_residual(self, k, v0, lam, n, l, c, tr):
        """The closed form satisfies Eqn (13) pointwise (second differences)."""
        model = LcSsnModel(make_params(k, v0, lam), n, l, c, 1.8, tr)
        t0, te = model.turn_on_time, model.ramp_end_time
        ts = np.linspace(t0 + (te - t0) * 0.1, te * 0.999, 64)
        h = (te - t0) * 1e-5
        v = np.asarray(model.voltage(ts))
        vp = (np.asarray(model.voltage(ts + h)) - np.asarray(model.voltage(ts - h))) / (2 * h)
        vpp = (
            np.asarray(model.voltage(ts + h))
            - 2 * v
            + np.asarray(model.voltage(ts - h))
        ) / h**2
        residual = l * c * vpp + n * l * k * lam * vp + v - model.asymptotic_voltage
        scale = max(model.asymptotic_voltage, 1e-6)
        assert np.max(np.abs(residual)) / scale < 5e-2


class TestDampingProperties:
    @given(k=ks, lam=lams, n=ns, l=inductances)
    def test_critical_capacitance_gives_unit_zeta(self, k, lam, n, l):
        params = make_params(k, 0.6, lam)
        c = critical_capacitance(params, n, l)
        assert damping_ratio(params, n, l, c) == pytest.approx(1.0, rel=1e-9)

    @given(k=ks, lam=lams, n=ns, l=inductances, factor=st.floats(1.1, 100.0))
    def test_more_capacitance_less_damping(self, k, lam, n, l, factor):
        params = make_params(k, 0.6, lam)
        c = 1e-12
        assert damping_ratio(params, n, l, c * factor) < damping_ratio(params, n, l, c)
