"""CSV export tests plus repository-wide API quality gates."""

import importlib
import inspect
import pkgutil

import numpy as np
import pytest

import repro
from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.sweeps import SweepPoint, SweepResult
from repro.process import TSMC018
from repro.spice import Waveform


class TestWaveformCsv:
    def test_roundtrip(self, tmp_path):
        t = np.linspace(0, 1e-9, 20)
        w = Waveform(t, np.sin(t * 1e10))
        path = tmp_path / "wf.csv"
        w.to_csv(path)
        back = Waveform.from_csv(path)
        assert back.max_abs_difference(w) < 1e-12

    def test_header_written(self, tmp_path):
        w = Waveform(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        path = tmp_path / "wf.csv"
        w.to_csv(path, header="time,ssn")
        assert path.read_text().splitlines()[0] == "time,ssn"


class TestSweepCsv:
    def test_layout(self, tmp_path):
        spec = DriverBankSpec(
            technology=TSMC018, n_drivers=1, inductance=5e-9, rise_time=0.5e-9
        )
        points = (
            SweepPoint(value=1.0, spec=spec, simulated_peak=0.1,
                       estimates={"b": 0.12, "a": 0.11}),
            SweepPoint(value=2.0, spec=spec, simulated_peak=0.2,
                       estimates={"b": 0.22, "a": 0.21}),
        )
        result = SweepResult(knob="n_drivers", points=points)
        path = tmp_path / "sweep.csv"
        result.to_csv(path)
        lines = path.read_text().splitlines()
        assert lines[0] == "n_drivers,simulated,a,b"
        first = [float(x) for x in lines[1].split(",")]
        assert first == pytest.approx([1.0, 0.1, 0.11, 0.12])


def _walk_public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # importing it runs the CLI
        yield importlib.import_module(info.name)


class TestApiQuality:
    def test_every_module_has_docstring(self):
        undocumented = [
            m.__name__ for m in _walk_public_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_callable_documented(self):
        """Public functions/classes across the package carry docstrings."""
        missing = []
        for module in _walk_public_modules():
            for name, obj in vars(module).items():
                if name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != module.__name__:
                    continue  # re-exports are documented at their home
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    if not (obj.__doc__ or "").strip():
                        missing.append(f"{module.__name__}.{name}")
        assert missing == []

    def test_all_exports_resolve(self):
        for module in _walk_public_modules():
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module.__name__}.__all__ lists {name}"

    def test_experiments_all_expose_run_and_report(self):
        from repro import experiments

        for name in experiments.__all__:
            module = getattr(experiments, name)
            if name in ("ablations", "common"):
                continue  # multi-entry / helper modules
            assert hasattr(module, "run"), f"{name} lacks run()"
