"""Integration tests: the paper's headline claims, model vs golden simulation.

These run real transient simulations (about a second each), so each claim
is exercised at one or two configurations; the full sweeps live in the
benchmark harness.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import DriverBankSpec, simulate_ssn
from repro.baselines import SongSsnModel, VemuruSsnModel
from repro.core import InductiveSsnModel, LcSsnModel, Table1Case

L = 5e-9
TR = 0.5e-9
C = 1e-12


@pytest.fixture(scope="module")
def sim_l_only(models018):
    spec = DriverBankSpec(
        technology=models018.technology, n_drivers=8, inductance=L, rise_time=TR
    )
    return simulate_ssn(spec)


@pytest.fixture(scope="module")
def sim_underdamped(models018):
    spec = DriverBankSpec(
        technology=models018.technology, n_drivers=2, inductance=L,
        capacitance=C, rise_time=TR,
    )
    return simulate_ssn(spec)


class TestInductiveModelAccuracy:
    def test_peak_within_five_percent(self, models018, sim_l_only):
        model = InductiveSsnModel(models018.asdm, 8, L, models018.technology.vdd, TR)
        err = abs(model.peak_voltage() - sim_l_only.peak_voltage) / sim_l_only.peak_voltage
        assert err < 0.05

    def test_peak_time_at_ramp_end(self, sim_l_only):
        assert sim_l_only.peak_time == pytest.approx(TR, rel=0.05)

    def test_waveform_match_in_late_window(self, models018, sim_l_only):
        """Eqn (6) tracks the simulation closely once the drivers are on."""
        model = InductiveSsnModel(models018.asdm, 8, L, models018.technology.vdd, TR)
        ts = np.linspace(0.3e-9, TR * 0.999, 50)
        sim_v = sim_l_only.ssn.value_at(ts)
        model_v = np.asarray(model.voltage(ts))
        assert np.max(np.abs(model_v - sim_v)) < 0.07 * sim_l_only.peak_voltage

    def test_current_waveform_match(self, models018, sim_l_only):
        """Eqn (8) current through the inductor, within a few percent of peak."""
        model = InductiveSsnModel(models018.asdm, 8, L, models018.technology.vdd, TR)
        ts = np.linspace(0.05e-9, TR * 0.999, 80)
        sim_i = sim_l_only.inductor_current.value_at(ts)
        model_i = np.asarray(model.total_current(ts))
        peak_i = float(np.max(sim_i))
        assert np.max(np.abs(model_i - sim_i)) < 0.06 * peak_i

    def test_output_stays_high_during_ramp(self, sim_l_only):
        """The modeling assumption: pads barely discharge during the rise."""
        vdd = 1.8
        vout_end = sim_l_only.output_voltage.value_at(TR)
        assert vout_end > 0.95 * vdd


class TestLcModelAccuracy:
    def test_underdamped_lc_model_close(self, models018, sim_underdamped):
        model = LcSsnModel(models018.asdm, 2, L, C, models018.technology.vdd, TR)
        assert model.case is Table1Case.UNDERDAMPED_FIRST_PEAK
        err = abs(model.peak_voltage() - sim_underdamped.peak_voltage)
        assert err / sim_underdamped.peak_voltage < 0.08

    def test_underdamped_l_only_model_fails(self, models018, sim_underdamped):
        """The paper's motivation: neglecting C is badly wrong here."""
        model = InductiveSsnModel(models018.asdm, 2, L, models018.technology.vdd, TR)
        err = (model.peak_voltage() - sim_underdamped.peak_voltage) / sim_underdamped.peak_voltage
        assert err < -0.10  # underestimates by more than 10%

    def test_simulation_shows_ringing(self, sim_underdamped):
        """Under-damped: the SSN waveform must actually oscillate."""
        maxima = sim_underdamped.ssn.local_maxima()
        assert len(maxima) >= 1
        trough_t, trough_v = sim_underdamped.ssn.trough()
        assert trough_v < 0.0  # undershoot below true ground

    def test_lc_beats_l_only_underdamped(self, models018, sim_underdamped):
        vdd = models018.technology.vdd
        lc = LcSsnModel(models018.asdm, 2, L, C, vdd, TR).peak_voltage()
        lo = InductiveSsnModel(models018.asdm, 2, L, vdd, TR).peak_voltage()
        ref = sim_underdamped.peak_voltage
        assert abs(lc - ref) < abs(lo - ref)


class TestBaselinesLessAccurate:
    def test_this_work_beats_vemuru_and_song(self, models018, sim_l_only):
        """Fig. 3's claim at the nominal configuration."""
        vdd = models018.technology.vdd
        ref = sim_l_only.peak_voltage
        ours = abs(InductiveSsnModel(models018.asdm, 8, L, vdd, TR).peak_voltage() - ref)
        vemuru = abs(VemuruSsnModel(models018.alpha_power, 8, L, vdd, TR).peak_voltage() - ref)
        song = abs(SongSsnModel(models018.alpha_power, 8, L, vdd, TR).peak_voltage() - ref)
        assert ours < vemuru
        assert ours < song


class TestScalingClaims:
    def test_peak_grows_sublinearly_with_n(self, models018, sim_l_only):
        """Doubling N far less than doubles the noise (Eqn 10 saturation)."""
        spec16 = DriverBankSpec(
            technology=models018.technology, n_drivers=16, inductance=L, rise_time=TR
        )
        peak16 = simulate_ssn(spec16).peak_voltage
        assert peak16 < 2 * sim_l_only.peak_voltage
        assert peak16 > sim_l_only.peak_voltage

    def test_z_equivalence_in_simulation(self, models018, sim_l_only):
        """Halving L while doubling N leaves the simulated peak nearly fixed."""
        spec = DriverBankSpec(
            technology=models018.technology, n_drivers=16, inductance=L / 2, rise_time=TR
        )
        peak = simulate_ssn(spec).peak_voltage
        assert peak == pytest.approx(sim_l_only.peak_voltage, rel=0.03)
