"""Transient-engine tests against analytic RC/RL/RLC solutions."""

import numpy as np
import pytest

from repro.spice import Circuit, Dc, Pulse, Ramp, TransientOptions, transient


class TestRc:
    def test_discharge_matches_exponential(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1e3)
        c.capacitor("C1", "a", "0", 1e-12, ic=1.0)
        res = transient(c, 5e-9, 1e-11)
        v = res.voltage("a")
        for t in (0.5e-9, 1e-9, 2e-9, 4e-9):
            assert v.value_at(t) == pytest.approx(np.exp(-t / 1e-9), abs=2e-4)

    def test_charge_through_resistor(self):
        c = Circuit()
        c.vsource("V1", "in", "0", Dc(1.0))
        c.resistor("R1", "in", "a", 1e3)
        c.capacitor("C1", "a", "0", 1e-12, ic=0.0)
        res = transient(c, 5e-9, 1e-11)
        v = res.voltage("a")
        assert v.value_at(1e-9) == pytest.approx(1 - np.exp(-1), abs=2e-4)
        assert v.value_at(5e-9) == pytest.approx(1.0, abs=1e-2)

    def test_capacitor_current_continuity(self):
        c = Circuit()
        c.vsource("V1", "in", "0", Ramp(0, 1, 0, 1e-9))
        c.capacitor("C1", "in", "0", 1e-12, ic=0.0)
        res = transient(c, 2e-9, 1e-11)
        i = res.current("C1")
        # During the ramp: i = C dV/dt = 1 mA; after: 0.
        assert i.value_at(0.5e-9) == pytest.approx(1e-3, rel=1e-3)
        assert abs(i.value_at(1.8e-9)) < 1e-6


class TestRl:
    def test_current_rise(self):
        c = Circuit()
        c.vsource("V1", "in", "0", Dc(1.0))
        c.resistor("R1", "in", "a", 10.0)
        c.inductor("L1", "a", "0", 10e-9)  # tau = 1 ns
        res = transient(c, 5e-9, 1e-11)
        i = res.current("L1")
        assert i.value_at(1e-9) == pytest.approx(0.1 * (1 - np.exp(-1)), rel=1e-3)
        assert i.value_at(5e-9) == pytest.approx(0.1, rel=1e-2)

    def test_initial_condition_respected(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 10.0)
        c.inductor("L1", "a", "0", 10e-9, ic=50e-3)
        res = transient(c, 3e-9, 1e-11)
        i = res.current("L1")
        assert abs(i.value_at(0.0)) == pytest.approx(50e-3, rel=1e-3)
        # L discharges into R with tau = L/R = 1 ns.
        assert abs(i.value_at(1e-9)) == pytest.approx(50e-3 * np.exp(-1), rel=5e-3)


class TestRlc:
    def test_underdamped_overshoot(self):
        """Series RLC step response vs the standard second-order formulas."""
        r, l, cap = 10.0, 5e-9, 1e-12
        c = Circuit()
        c.vsource("V1", "in", "0", Ramp(0, 1, 0, 1e-12))
        c.resistor("R1", "in", "m", r)
        c.inductor("L1", "m", "o", l)
        c.capacitor("C1", "o", "0", cap, ic=0.0)
        res = transient(c, 3e-9, 5e-13)
        zeta = (r / 2) * np.sqrt(cap / l)
        overshoot = 1 + np.exp(-np.pi * zeta / np.sqrt(1 - zeta**2))
        t_peak, v_peak = res.voltage("o").peak()
        assert v_peak == pytest.approx(overshoot, rel=2e-3)
        assert t_peak == pytest.approx(np.pi * np.sqrt(l * cap), rel=0.05)

    def test_energy_dissipates(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 100.0)
        c.inductor("L1", "a", "b", 5e-9)
        c.capacitor("C1", "b", "0", 1e-12, ic=1.0)
        res = transient(c, 20e-9, 1e-11)
        assert abs(res.voltage("b").value_at(20e-9)) < 1e-2


class TestEngine:
    def test_breakpoints_hit_exactly(self):
        c = Circuit()
        c.vsource("V1", "a", "0", Ramp(0, 1, 0.35e-9, 0.3e-9))
        c.resistor("R1", "a", "0", 1e3)
        res = transient(c, 1e-9, 1e-10)
        assert np.any(np.isclose(res.times, 0.35e-9, atol=1e-18))
        assert np.any(np.isclose(res.times, 0.65e-9, atol=1e-18))

    def test_pulse_roundtrip(self):
        c = Circuit()
        c.vsource("V1", "in", "0", Pulse(0, 1, 0.1e-9, 0.1e-9, 0.3e-9, 0.1e-9))
        c.resistor("R1", "in", "a", 1e3)
        c.capacitor("C1", "a", "0", 0.1e-12, ic=0.0)
        res = transient(c, 1.5e-9, 2e-12)
        v = res.voltage("a")
        assert v.value_at(0.45e-9) > 0.9
        assert v.value_at(1.5e-9) < 0.05

    def test_be_and_trap_agree(self):
        def run(method):
            c = Circuit()
            c.resistor("R1", "a", "0", 1e3)
            c.capacitor("C1", "a", "0", 1e-12, ic=1.0)
            return transient(c, 2e-9, 2e-12, options=TransientOptions(method=method))

        vt = run("trap").voltage("a")
        vb = run("be").voltage("a")
        assert vt.max_abs_difference(vb) < 5e-3

    def test_ground_voltage_is_zero(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1e3)
        c.capacitor("C1", "a", "0", 1e-12, ic=1.0)
        res = transient(c, 1e-9, 1e-11)
        assert np.all(res.voltage("0").y == 0.0)

    def test_unknown_current_name(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1e3)
        c.capacitor("C1", "a", "0", 1e-12, ic=1.0)
        res = transient(c, 1e-9, 1e-11)
        with pytest.raises(KeyError):
            res.current("R9")

    def test_invalid_times_rejected(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1e3)
        with pytest.raises(ValueError):
            transient(c, 0.0, 1e-12)
        with pytest.raises(ValueError):
            transient(c, 1e-9, -1e-12)

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError):
            TransientOptions(method="euler")

    def test_first_sample_at_tstart(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1e3)
        c.capacitor("C1", "a", "0", 1e-12, ic=0.7)
        res = transient(c, 1e-9, 1e-11)
        assert res.times[0] == 0.0
        assert res.voltage("a").value_at(0.0) == pytest.approx(0.7, abs=1e-3)
