"""The shadow-audit accuracy monitor and the operational health surface.

Unit-level: deterministic audit sampling, track/resolve/discard
bookkeeping, breach detection against the served tolerance, registry
demotion (idempotent, reinstated by re-registration).  Service-level: the
acceptance demo — a surrogate whose device model drifted after fit time
serves answers outside its tolerance, the shadow audit (piggybacking on
the background golden refinement) catches it, demotes the region, and
subsequent queries fall back to golden-parity exact answers, all visible
in ``/statusz`` and replayable from the durable event journal after the
process is gone.  Plus ``/healthz`` warming semantics and the flight
recorder's crash-path bundles.
"""

import asyncio
import contextlib
import dataclasses
import json
import threading

import pytest

from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.simulate import simulate_ssn, simulate_ssn_cache_clear
from repro.observability import events as obs_events
from repro.observability import health as obs_health
from repro.observability import metrics as obs_metrics
from repro.observability import trace
from repro.process import get_technology
from repro.service import ResultStore, SsnService, arequest, surrogate_key
from repro.spice.telemetry import disable_session_telemetry
from repro.surrogate import SurrogateAuditor, SurrogateRegistry, fit_surrogate
from repro.surrogate.audit import _key_fraction
from repro.surrogate.registry import DEMOTIONS_METRIC
from repro.testing import faults
from repro.testing.faults import FaultRule, InjectedCrash


@pytest.fixture(autouse=True)
def registry():
    """Fresh per-test process state: metrics, memo, faults, events."""
    simulate_ssn_cache_clear()
    faults.clear_faults()
    disable_session_telemetry()
    trace.disable_tracing()
    obs_events.disable_events()
    registry = obs_metrics.enable_metrics()
    yield registry
    simulate_ssn_cache_clear()
    faults.clear_faults()
    disable_session_telemetry()
    trace.disable_tracing()
    obs_events.disable_events()
    obs_metrics.disable_metrics()


@pytest.fixture(scope="module")
def model():
    """One fitted surrogate shared by the module (fitting is the slow part)."""
    return fit_surrogate(
        "tsmc018", n_drivers=(2, 6), inductance=(2e-9, 5e-9),
        rise_time=(0.4e-9, 0.7e-9))


def in_region_spec(n_drivers=4):
    return DriverBankSpec(
        technology=get_technology("tsmc018"), n_drivers=n_drivers,
        inductance=3e-9, rise_time=0.5e-9)


@contextlib.asynccontextmanager
async def service_on(tmp_path, **kwargs):
    service = SsnService(store_root=tmp_path / "store", port=0, **kwargs)
    await service.start()
    try:
        yield service
    finally:
        await service.close()


class TestDeterministicSampling:
    def test_key_fraction_is_the_hex_prefix(self):
        assert _key_fraction("00000000" + "ab" * 28) == 0.0
        assert _key_fraction("80000000") == 0.5
        assert 0.0 <= _key_fraction("not hex at all") < 1.0

    def test_same_key_same_decision(self, model):
        auditor = SurrogateAuditor(SurrogateRegistry(), fraction=0.5)
        keys = [f"{i:08x}{'0' * 56}" for i in range(0, 2 ** 32, 2 ** 28)]
        first = [auditor.should_sample(k) for k in keys]
        assert first == [auditor.should_sample(k) for k in keys]
        assert any(first) and not all(first)  # the fraction really splits

    def test_fraction_bounds(self):
        registry = SurrogateRegistry()
        assert not SurrogateAuditor(registry, fraction=0.0).should_sample("00")
        assert SurrogateAuditor(registry, fraction=1.0).should_sample("ffffffff")
        with pytest.raises(ValueError, match="fraction"):
            SurrogateAuditor(registry, fraction=1.5)
        with pytest.raises(ValueError, match="window"):
            SurrogateAuditor(registry, window=0)


class TestAuditorResolution:
    def _auditor(self, model, fraction=1.0):
        registry = SurrogateRegistry()
        registry.register(model)
        return SurrogateAuditor(registry, fraction=fraction)

    def test_track_resolve_within_tolerance(self, model, registry):
        auditor = self._auditor(model)
        reference = 0.5
        estimate = reference * (1.0 + model.tolerance_percent / 300.0)
        assert auditor.track("aa" * 32, model, estimate)
        assert not auditor.track("aa" * 32, model, estimate)  # already pending
        assert auditor.pending_count() == 1
        obs = auditor.resolve("aa" * 32, reference)
        assert obs is not None and not obs.breached and not obs.demoted
        assert obs.error_percent == pytest.approx(
            model.tolerance_percent / 3.0)
        assert auditor.pending_count() == 0
        assert auditor.registry.demoted() == {}
        (summary,) = auditor.summaries().values()
        assert summary.n_points == 1
        labels = {"technology": model.technology, "topology": model.topology,
                  "operating_region": model.operating_region}
        assert registry.get(
            "repro_surrogate_audit_samples_total", labels).value == 1

    def test_breach_demotes_once(self, model, registry):
        auditor = self._auditor(model)
        reference = 0.5
        bad = reference * (1.0 + 2.0 * model.tolerance_percent / 100.0)
        auditor.track("bb" * 32, model, bad)
        obs = auditor.resolve("bb" * 32, reference)
        assert obs.breached and obs.demoted
        assert registry.get(DEMOTIONS_METRIC).value == 1
        demoted = auditor.registry.demoted()
        assert model.key in demoted and "tolerance" in demoted[model.key]
        # A second breach of the same region does not re-demote.
        auditor.track("cc" * 32, model, bad)
        second = auditor.resolve("cc" * 32, reference)
        assert second.breached and not second.demoted
        assert registry.get(DEMOTIONS_METRIC).value == 1
        payload = auditor.as_payload()
        region = "/".join(model.key)
        assert payload["regions"][region]["demoted"] is True
        assert payload["regions"][region]["samples"] == 2
        assert payload["demoted"][0]["reason"] == demoted[model.key]

    def test_untracked_discarded_and_zero_reference(self, model, registry):
        auditor = self._auditor(model)
        assert auditor.resolve("dd" * 32, 0.5) is None  # never tracked
        auditor.track("ee" * 32, model, 0.5)
        auditor.discard("ee" * 32)
        assert auditor.resolve("ee" * 32, 0.5) is None
        auditor.track("ff" * 32, model, 0.5)
        assert auditor.resolve("ff" * 32, 0.0) is None  # undefined % error
        assert auditor.pending_count() == 0
        assert auditor.summaries() == {}


class TestRegistryDemotion:
    def test_demoted_slot_refuses_and_refit_reinstates(self, model, registry):
        reg = SurrogateRegistry()
        reg.register(model)
        spec = in_region_spec()
        hit, _ = reg.lookup(spec)
        assert hit is model
        assert reg.demote(model.key, "audit evidence")
        benched, reason = reg.lookup(spec)
        assert benched is None and reason.startswith("demoted: audit evidence")
        assert not reg.demote(model.key, "again")  # idempotent
        reg.register(model)  # a refit reinstates the slot
        assert reg.demoted() == {}
        again, _ = reg.lookup(spec)
        assert again is model


class TestServiceHealth:
    def test_healthz_warming_until_store_scan_completes(self, tmp_path):
        async def scenario():
            service = SsnService(store_root=tmp_path / "store", port=0)
            gate = threading.Event()
            service._warm_from_store = lambda: gate.wait(10)
            task = asyncio.create_task(service.start())
            try:
                while service.port is None:
                    await asyncio.sleep(0.005)
                status, warming = await arequest(
                    "127.0.0.1", service.port, "GET", "/healthz")
                gate.set()
                await task
                status2, ready = await arequest(
                    "127.0.0.1", service.port, "GET", "/healthz")
            finally:
                gate.set()
                await service.close()
            return status, warming, status2, ready

        status, warming, status2, ready = asyncio.run(scenario())
        assert status == 200 and warming["status"] == "warming"
        assert status2 == 200 and ready["status"] == "ok"

    def test_statusz_schema_and_journal_tail(self, tmp_path):
        params = {"n_drivers": 2, "inductance": 1e-9, "rise_time": 0.5e-9}

        async def scenario():
            async with service_on(tmp_path) as service:
                await arequest("127.0.0.1", service.port, "POST",
                               "/simulate", params)
                await arequest("127.0.0.1", service.port, "POST",
                               "/simulate", params)
                return await arequest(
                    "127.0.0.1", service.port, "GET", "/statusz")

        status, payload = asyncio.run(scenario())
        assert status == 200
        assert payload["schema"] == obs_health.STATUS_SCHEMA_VERSION
        assert payload["status"] == "ok" and payload["ready"] is True
        assert payload["store"]["records"] == 1
        totals = payload["requests"]["totals"]["simulate"]
        assert totals == {"miss": 1.0, "hit": 1.0}
        # Latency histograms label by request path; outcome counters by
        # the short endpoint name.
        assert "/simulate" in payload["latency"]
        assert set(payload["latency"]["/simulate"]) <= {"p50", "p90", "p99"}
        assert payload["slo"]["requests"] >= 2
        assert payload["slo"]["error_budget"]["state"] == "ok"
        assert payload["surrogate"]["enabled"] is True
        assert payload["surrogate"]["audit"]["pending"] == 0
        events = payload["events"]
        assert events["recorded"] >= 3  # ready + two requests
        assert events["path"].endswith("events.jsonl")
        assert any(e["name"] == "service_request" for e in events["tail"])


class TestFlightRecorder:
    def test_bundle_contents_and_atomicity(self, tmp_path, registry):
        obs_events.enable_events()
        obs_events.emit("before_incident", detail=1)
        obs_metrics.inc("repro_service_computes_total")
        path = obs_health.flight_record(tmp_path / "flight", "test_reason",
                                        extra={"key": "abc"})
        bundle = json.loads(path.read_text())
        assert bundle["reason"] == "test_reason"
        assert bundle["extra"] == {"key": "abc"}
        assert any(e["name"] == "before_incident" for e in bundle["events"])
        assert bundle["metrics"] is not None
        # The journal records that a bundle was written.
        names = [e["name"] for e in obs_events.snapshot_events()]
        assert "flight_recorded" in names

    def test_crash_write_probe_fires(self, tmp_path):
        faults.install_faults([FaultRule(kind="crash-write", phase="events")],
                              mirror_env=False)
        with pytest.raises(InjectedCrash):
            obs_health.flight_record(tmp_path / "flight", "torn")
        faults.clear_faults()
        # atomic_write cleaned up: no bundle, no temp leftovers.
        flight_dir = tmp_path / "flight"
        assert [p for p in flight_dir.iterdir()] == []

    def test_maybe_is_noop_without_directory(self, monkeypatch):
        monkeypatch.delenv(obs_health.FLIGHT_ENV, raising=False)
        assert obs_health.maybe_flight_record(None, "x") is None

    def test_maybe_env_fallback_and_swallowed_failure(
            self, tmp_path, monkeypatch, registry):
        monkeypatch.setenv(obs_health.FLIGHT_ENV, str(tmp_path / "env_flight"))
        path = obs_health.maybe_flight_record(None, "via_env")
        assert path is not None and path.parent.name == "env_flight"
        # A failing write is swallowed (counted), never propagated: the
        # recorder runs while a real error is already unwinding.
        faults.install_faults([FaultRule(kind="crash-write", phase="events")],
                              mirror_env=False)
        assert obs_health.maybe_flight_record(None, "crashing") is None
        faults.clear_faults()
        assert registry.get("repro_flight_record_errors_total").value == 1

    def test_service_compute_crash_dumps_a_bundle(self, tmp_path, registry):
        params = {"n_drivers": 2, "inductance": 1e-9, "rise_time": 0.5e-9}

        async def scenario():
            async with service_on(
                    tmp_path, flight_dir=tmp_path / "flight") as service:
                def boom(key, spec, options):
                    raise RuntimeError("solver exploded")
                service._compute_simulation_sync = boom
                return await arequest("127.0.0.1", service.port, "POST",
                                      "/simulate", params)

        status, payload = asyncio.run(scenario())
        assert status == 500 and "solver exploded" in payload["error"]
        (bundle_path,) = sorted((tmp_path / "flight").glob("flight-*.json"))
        bundle = json.loads(bundle_path.read_text())
        assert bundle["reason"] == "service_compute_failed"
        assert "solver exploded" in bundle["extra"]["error"]
        names = [e["name"] for e in bundle["events"]]
        assert "service_compute_failed" in names


class TestAuditEndToEnd:
    """Acceptance: injected device drift -> audit -> demotion -> golden parity."""

    IN_REGION = {"n_drivers": 4, "inductance": 3e-9, "rise_time": 0.5e-9,
                 "tech": "tsmc018"}

    def _drifted(self, model):
        """The fitted model with post-fit device drift injected.

        Scaling the fitted transconductance models silicon that drifted
        after characterization: the card's name and vdd still match, so
        the validity contract (which cannot see device internals) keeps
        accepting queries while served answers are now far outside the
        recorded tolerance.
        """
        drifted_asdm = dataclasses.replace(model.asdm, k=model.asdm.k * 1.5)
        return dataclasses.replace(model, asdm=drifted_asdm)

    def test_drift_is_audited_demoted_then_golden(self, tmp_path, model,
                                                  registry):
        drifted = self._drifted(model)
        spec = in_region_spec()
        golden = simulate_ssn(spec)
        drift_percent = abs(
            drifted.simulation(spec).peak_voltage - golden.peak_voltage
        ) / golden.peak_voltage * 100.0
        assert drift_percent > model.tolerance_percent  # the injected fault

        store = ResultStore(tmp_path / "store")
        store.put_surrogate(
            surrogate_key(drifted.technology, drifted.topology,
                          drifted.operating_region), drifted)

        async def scenario():
            async with service_on(tmp_path, audit_fraction=1.0) as service:
                _, first = await arequest(
                    "127.0.0.1", service.port, "POST", "/simulate",
                    self.IN_REGION)
                # The background refinement is both the golden record and
                # the audit's reference; once it lands the breach is known.
                await service.drain_background()
                _, again = await arequest(
                    "127.0.0.1", service.port, "POST", "/simulate",
                    self.IN_REGION)
                other_params = dict(self.IN_REGION, n_drivers=5)
                _, other = await arequest(
                    "127.0.0.1", service.port, "POST", "/simulate",
                    other_params)
                _, statusz = await arequest(
                    "127.0.0.1", service.port, "GET", "/statusz")
                demoted_slots = service.registry.demoted()
            return first, again, other, statusz, demoted_slots

        first, again, other, statusz, demoted_slots = asyncio.run(scenario())

        # 1. The drifted model answered, wrongly, within its claimed bound.
        assert first["outcome"] == "surrogate"
        assert first["peak_voltage"] == pytest.approx(
            drifted.simulation(spec).peak_voltage)

        # 2. The audit caught the breach and demoted the region exactly once.
        assert registry.get(DEMOTIONS_METRIC).value == 1
        assert drifted.key in demoted_slots
        labels = {"technology": drifted.technology,
                  "topology": drifted.topology,
                  "operating_region": drifted.operating_region}
        assert registry.get(
            "repro_surrogate_audit_breaches_total", labels).value == 1

        # 3. Subsequent queries are golden parity: the audited key from the
        # refined record, the fresh in-region key via the exact path (the
        # demoted model refuses it).
        assert again["outcome"] == "hit"
        assert abs(again["peak_voltage"] - golden.peak_voltage) <= 1e-9
        assert other["outcome"] == "miss"
        other_golden = simulate_ssn(in_region_spec(n_drivers=5))
        assert abs(other["peak_voltage"] - other_golden.peak_voltage) <= 1e-9

        # 4. /statusz reports the region degraded, with the audit evidence.
        audit = statusz["surrogate"]["audit"]
        region = "/".join(drifted.key)
        assert audit["regions"][region]["demoted"] is True
        assert audit["regions"][region]["max_abs_percent"] > \
            model.tolerance_percent
        (slot,) = audit["demoted"]
        assert slot["technology"] == "tsmc018"
        assert "tolerance" in slot["reason"]

        # 5. The durable journal replays the full sequence after the
        # process is gone (the service closed and released the journal).
        assert obs_events.active_journal() is None
        events = obs_events.read_journal(tmp_path / "store" / "events.jsonl")
        names = [e["name"] for e in events]
        for needed in ("service_ready", "service_request",
                       "surrogate_audited", "surrogate_demoted",
                       "surrogate_refused"):
            assert needed in names, f"journal is missing {needed!r}"
        assert names.index("surrogate_demoted") < \
            names.index("surrogate_audited")  # demotion happens in resolve()
        served = [e for e in events if e["name"] == "service_request"]
        outcomes = [e["attributes"]["outcome"] for e in served]
        assert "surrogate" in outcomes and "hit" in outcomes \
            and "miss" in outcomes
        audited = [e for e in events if e["name"] == "surrogate_audited"]
        assert audited[0]["attributes"]["breached"] is True
        assert audited[0]["attributes"]["error_percent"] == pytest.approx(
            drift_percent, rel=1e-6)

    def test_within_tolerance_drift_is_observed_not_demoted(
            self, tmp_path, model, registry):
        """The healthy path: audits resolve, summaries fill, no demotion."""
        store = ResultStore(tmp_path / "store")
        store.put_surrogate(
            surrogate_key(model.technology, model.topology,
                          model.operating_region), model)

        async def scenario():
            async with service_on(tmp_path, audit_fraction=1.0) as service:
                await arequest("127.0.0.1", service.port, "POST",
                               "/simulate", self.IN_REGION)
                await service.drain_background()
                _, statusz = await arequest(
                    "127.0.0.1", service.port, "GET", "/statusz")
                return statusz, service.registry.demoted()

        statusz, demoted = asyncio.run(scenario())
        assert demoted == {}
        assert registry.get(DEMOTIONS_METRIC) is None
        region = "/".join(model.key)
        stats = statusz["surrogate"]["audit"]["regions"][region]
        assert stats["samples"] == 1 and stats["demoted"] is False
        assert stats["max_abs_percent"] <= model.tolerance_percent
