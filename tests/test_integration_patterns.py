"""Integration tests for E15: random-data SSN statistics."""

import numpy as np
import pytest

from repro.experiments import pattern_statistics


@pytest.fixture(scope="module")
def result():
    return pattern_statistics.run(bus_width=16, sim_check_counts=(4, 8))


class TestDistribution:
    def test_probabilities_normalized(self, result):
        assert float(np.sum(result.probabilities)) == pytest.approx(1.0, abs=1e-12)

    def test_peaks_monotone_in_n(self, result):
        assert np.all(np.diff(result.peaks) > 0)

    def test_zero_switch_zero_noise(self, result):
        assert result.peaks[0] == 0.0

    def test_order_statistics(self, result):
        assert 0.0 < result.mean_peak < result.p99_peak < result.worst_case

    def test_statistical_margin_positive(self, result):
        assert result.statistical_margin > 0.0

    def test_mean_matches_direct_expectation(self, result):
        assert result.mean_peak == pytest.approx(
            float(np.sum(result.probabilities * result.peaks)), rel=1e-12
        )


class TestValidation:
    def test_spot_checks_within_model_accuracy(self, result):
        for n, sim, model in result.sim_checks:
            assert abs(model - sim) / sim < 0.06

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pattern_statistics.run(bus_width=0)
        with pytest.raises(ValueError):
            pattern_statistics.run(bus_width=8, sim_check_counts=(16,))

    def test_report_renders(self, result):
        text = result.format_report()
        assert "statistical margin" in text
        assert "Spot validation" in text
