"""Unit tests for the power-rail duality model."""

import numpy as np
import pytest

from repro.core import (
    AsdmParameters,
    InductiveSsnModel,
    LcSsnModel,
    PowerRailSsnModel,
    fit_pmos_asdm,
)
from repro.process import TSMC018


@pytest.fixture(scope="module")
def pmos_params():
    params, report = fit_pmos_asdm(TSMC018.pullup_device(), TSMC018.vdd)
    assert report.max_relative_error < 0.10
    return params


class TestFit:
    def test_parameters_physical(self, pmos_params):
        assert pmos_params.k > 0
        assert pmos_params.lam > 1.0
        assert 0.3 < pmos_params.v0 < 1.0

    def test_v0_exceeds_pmos_threshold(self, pmos_params):
        assert pmos_params.v0 > TSMC018.pmos.vth0


class TestDuality:
    def test_l_only_mirrors_ground_model(self, pmos_params):
        rail = PowerRailSsnModel(pmos_params, 8, 5e-9, 1.8, 0.5e-9)
        ground = InductiveSsnModel(pmos_params, 8, 5e-9, 1.8, 0.5e-9)
        assert rail.peak_droop() == pytest.approx(ground.peak_voltage(), rel=1e-12)

    def test_lc_mirrors_ground_model(self, pmos_params):
        rail = PowerRailSsnModel(pmos_params, 8, 5e-9, 1.8, 0.5e-9, capacitance=1e-12)
        ground = LcSsnModel(pmos_params, 8, 5e-9, 1e-12, 1.8, 0.5e-9)
        assert rail.peak_droop() == pytest.approx(ground.peak_voltage(), rel=1e-12)
        assert rail.peak_time() == ground.peak_time()

    def test_rail_voltage_is_vdd_minus_droop(self, pmos_params):
        rail = PowerRailSsnModel(pmos_params, 8, 5e-9, 1.8, 0.5e-9)
        ts = np.linspace(0.1e-9, 0.45e-9, 20)
        np.testing.assert_allclose(
            np.asarray(rail.rail_voltage(ts)),
            1.8 - np.asarray(rail.droop(ts)),
            rtol=1e-12,
        )

    def test_droop_positive_during_ramp(self, pmos_params):
        rail = PowerRailSsnModel(pmos_params, 8, 5e-9, 1.8, 0.5e-9)
        assert float(rail.droop(0.45e-9)) > 0.0

    def test_mirror_exposed(self, pmos_params):
        rail = PowerRailSsnModel(pmos_params, 8, 5e-9, 1.8, 0.5e-9, capacitance=1e-12)
        assert isinstance(rail.mirror, LcSsnModel)


class TestSyntheticDuality:
    def test_same_parameters_same_answer_as_ground_problem(self):
        """With identical ASDM parameters the two problems are identical."""
        params = AsdmParameters(k=5e-3, v0=0.6, lam=1.05)
        rail = PowerRailSsnModel(params, 4, 5e-9, 1.8, 0.5e-9)
        ground = InductiveSsnModel(params, 4, 5e-9, 1.8, 0.5e-9)
        ts = np.linspace(0.2e-9, 0.49e-9, 10)
        np.testing.assert_allclose(
            np.asarray(rail.droop(ts)), np.asarray(ground.voltage(ts)), rtol=1e-12
        )
