"""Unit tests for damping-region arithmetic (paper Eqn 27)."""

import pytest

from repro.core import (
    AsdmParameters,
    DampingRegion,
    classify,
    critical_capacitance,
    critical_driver_count,
    damping_ratio,
    decay_rate,
    natural_frequency,
)


@pytest.fixture
def params():
    return AsdmParameters(k=5.4e-3, v0=0.60, lam=1.04)


class TestBasicQuantities:
    def test_decay_rate_formula(self, params):
        assert decay_rate(params, 8, 2e-12) == pytest.approx(
            8 * params.k * params.lam / (2 * 2e-12)
        )

    def test_natural_frequency(self):
        assert natural_frequency(5e-9, 2e-12) == pytest.approx(1e10, rel=1e-9)

    def test_damping_ratio_is_a_over_w0(self, params):
        zeta = damping_ratio(params, 8, 5e-9, 1e-12)
        assert zeta == pytest.approx(
            decay_rate(params, 8, 1e-12) / natural_frequency(5e-9, 1e-12)
        )


class TestCriticalCapacitance:
    def test_eqn27(self, params):
        n, l = 8, 5e-9
        expected = (n * params.k * params.lam) ** 2 * l / 4
        assert critical_capacitance(params, n, l) == pytest.approx(expected)

    def test_zeta_is_one_at_critical(self, params):
        c = critical_capacitance(params, 8, 5e-9)
        assert damping_ratio(params, 8, 5e-9, c) == pytest.approx(1.0, rel=1e-12)

    def test_quadratic_in_n(self, params):
        c1 = critical_capacitance(params, 3, 5e-9)
        c2 = critical_capacitance(params, 6, 5e-9)
        assert c2 == pytest.approx(4 * c1, rel=1e-12)

    def test_inverse_critical_driver_count(self, params):
        c = 1e-12
        n_star = critical_driver_count(params, 5e-9, c)
        assert critical_capacitance(params, 1, 5e-9) * n_star**2 == pytest.approx(c, rel=1e-9)


class TestClassification:
    def test_under_damped_above_critical_c(self, params):
        c = critical_capacitance(params, 8, 5e-9)
        assert classify(params, 8, 5e-9, 1.5 * c) is DampingRegion.UNDERDAMPED

    def test_over_damped_below_critical_c(self, params):
        c = critical_capacitance(params, 8, 5e-9)
        assert classify(params, 8, 5e-9, 0.5 * c) is DampingRegion.OVERDAMPED

    def test_critical_at_exact_c(self, params):
        c = critical_capacitance(params, 8, 5e-9)
        assert classify(params, 8, 5e-9, c) is DampingRegion.CRITICALLY_DAMPED

    def test_small_n_under_damped_at_fixed_c(self, params):
        """The paper's observation: small N -> under-damped, large N -> over."""
        assert classify(params, 1, 5e-9, 1e-12) is DampingRegion.UNDERDAMPED
        assert classify(params, 16, 5e-9, 1e-12) is DampingRegion.OVERDAMPED


class TestValidation:
    def test_bad_arguments_rejected(self, params):
        with pytest.raises(ValueError):
            decay_rate(params, 0, 1e-12)
        with pytest.raises(ValueError):
            natural_frequency(-1e-9, 1e-12)
        with pytest.raises(ValueError):
            damping_ratio(params, 8, 5e-9, 0.0)
        with pytest.raises(ValueError):
            critical_capacitance(params, -1, 5e-9)
        with pytest.raises(ValueError):
            critical_driver_count(params, 5e-9, -1e-12)
