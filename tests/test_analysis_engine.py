"""Tests for execution-engine selection and the batched analysis routing.

Covers :mod:`repro.analysis.engine` (precedence of explicit argument,
process default, ``REPRO_ENGINE``), the lockstep grouping inside
:func:`simulate_many`, sweep/Monte-Carlo pass-through, and the CLI flag.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.engine import ENGINES, resolve_engine, set_default_engine
from repro.analysis.montecarlo import DeviceSpread, transient_peak_distribution
from repro.analysis.simulate import simulate_many, simulate_ssn_cache_clear
from repro.analysis.sweeps import sweep_driver_count
from repro.cli import build_parser
from repro.spice.transient import TransientOptions

#: Batched analysis results must stay within this of the scalar path.
PARITY_TOL = 1e-9


@pytest.fixture(autouse=True)
def _clean_engine_state(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    set_default_engine(None)
    yield
    set_default_engine(None)


@pytest.fixture
def base(tech018):
    # Coarse rise time keeps each golden simulation fast for unit testing.
    return DriverBankSpec(
        technology=tech018, n_drivers=1, inductance=5e-9, rise_time=0.5e-9
    )


class TestResolveEngine:
    def test_default_is_scalar(self):
        assert resolve_engine() == "scalar"
        assert resolve_engine(None, n_items=10) == "scalar"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        assert resolve_engine("scalar") == "scalar"

    def test_env_var_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        assert resolve_engine() == "batch"

    def test_process_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        set_default_engine("scalar")
        assert resolve_engine() == "scalar"

    def test_auto_picks_by_ensemble_size(self):
        assert resolve_engine("auto", n_items=1) == "scalar"
        assert resolve_engine("auto", n_items=2) == "batch"
        assert resolve_engine("auto") == "batch"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_engine("vectorized")
        with pytest.raises(ValueError):
            set_default_engine("vectorized")

    def test_engine_names_frozen(self):
        assert ENGINES == ("auto", "batch", "scalar", "surrogate")


class TestSimulateManyRouting:
    def test_batch_matches_scalar(self, base):
        specs = [dataclasses.replace(base, n_drivers=n) for n in (1, 3, 6)]
        scalar = simulate_many(specs, engine="scalar")
        simulate_ssn_cache_clear()
        batched = simulate_many(specs, engine="batch")
        for s, b in zip(scalar, batched):
            assert abs(s.peak_voltage - b.peak_voltage) <= PARITY_TOL
            assert np.max(np.abs(s.ssn.y - b.ssn.y)) <= PARITY_TOL
            # Per-instance telemetry survives the lockstep loop exactly.
            assert b.telemetry.newton_iterations == s.telemetry.newton_iterations

    def test_results_preserve_spec_order(self, base):
        specs = [dataclasses.replace(base, n_drivers=n) for n in (5, 1, 3)]
        sims = simulate_many(specs, engine="batch")
        assert [s.spec.n_drivers for s in sims] == [5, 1, 3]

    def test_mixed_time_grids_split_into_groups(self, base):
        # Different rise times -> different breakpoints and steps; the
        # batch router must split them rather than force one lockstep.
        specs = [
            dataclasses.replace(base, n_drivers=2),
            dataclasses.replace(base, n_drivers=4),
            dataclasses.replace(base, n_drivers=2, rise_time=0.25e-9),
        ]
        scalar = simulate_many(specs, engine="scalar")
        simulate_ssn_cache_clear()
        batched = simulate_many(specs, engine="batch")
        for s, b in zip(scalar, batched):
            assert abs(s.peak_voltage - b.peak_voltage) <= PARITY_TOL

    def test_unbatchable_options_fall_back_to_scalar(self, base):
        specs = [dataclasses.replace(base, n_drivers=n) for n in (1, 2)]
        options = TransientOptions(legacy_reference=True)
        sims = simulate_many(specs, options=options, engine="batch")
        assert all(sim.peak_voltage > 0.0 for sim in sims)

    def test_env_var_routes_batch(self, base, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        specs = [dataclasses.replace(base, n_drivers=n) for n in (1, 2)]
        scalar = simulate_many(specs, engine="scalar")
        simulate_ssn_cache_clear()
        routed = simulate_many(specs)
        for s, r in zip(scalar, routed):
            assert abs(s.peak_voltage - r.peak_voltage) <= PARITY_TOL


class TestSweepPassThrough:
    def test_sweep_engines_agree(self, base):
        estimators = {"const": lambda spec: 0.25}
        counts = [1, 2, 4]
        scalar = sweep_driver_count(base, counts, estimators, engine="scalar")
        simulate_ssn_cache_clear()
        batched = sweep_driver_count(base, counts, estimators, engine="batch")
        assert scalar.values() == batched.values()
        for sp, bp in zip(scalar.simulated_peaks(), batched.simulated_peaks()):
            assert abs(sp - bp) <= PARITY_TOL
        # Aggregated telemetry still accounts for every point.
        assert batched.telemetry.newton_iterations == \
            scalar.telemetry.newton_iterations


class TestTransientMonteCarlo:
    def test_engines_draw_identical_samples(self, base):
        spec = dataclasses.replace(base, n_drivers=4)
        kwargs = dict(spread=DeviceSpread(), trials=5, seed=11)
        scalar = transient_peak_distribution(spec, engine="scalar", **kwargs)
        simulate_ssn_cache_clear()
        batched = transient_peak_distribution(spec, engine="batch", **kwargs)
        assert len(scalar.samples) == len(batched.samples) == 5
        assert np.max(np.abs(scalar.samples - batched.samples)) <= PARITY_TOL
        assert scalar.nominal == pytest.approx(batched.nominal, abs=PARITY_TOL)

    def test_distribution_statistics_coherent(self, base):
        mc = transient_peak_distribution(
            dataclasses.replace(base, n_drivers=4), trials=6, seed=3, engine="batch"
        )
        assert mc.samples.min() <= mc.mean <= mc.samples.max()
        assert mc.samples.min() <= mc.p95 <= mc.samples.max()
        assert mc.std >= 0.0
        assert mc.telemetry.newton_iterations > 0

    def test_too_few_trials_rejected(self, base):
        with pytest.raises(ValueError):
            transient_peak_distribution(base, trials=1)

    def test_negative_spread_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpread(vth_sigma=-0.01)


class TestCliFlag:
    def test_engine_flag_parsed(self):
        args = build_parser().parse_args(
            ["estimate", "-n", "4", "--engine", "batch"]
        )
        assert args.engine == "batch"

    def test_engine_flag_default_none(self):
        args = build_parser().parse_args(["estimate", "-n", "4"])
        assert args.engine is None

    def test_engine_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "-n", "4", "--engine", "turbo"])
