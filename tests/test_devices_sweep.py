"""Unit tests for IV sweep utilities."""

import numpy as np
import pytest

from repro.devices import BsimLikeMosfet, IvSurface, sweep_id_vg


@pytest.fixture
def surface():
    return sweep_id_vg(BsimLikeMosfet(), 1.8)


class TestSweep:
    def test_default_grids(self, surface):
        assert surface.vdd == 1.8
        assert surface.vg[0] == 0.0
        assert surface.vg[-1] == pytest.approx(1.8)
        assert list(surface.vs) == pytest.approx([0.0, 0.2, 0.4, 0.6, 0.8])

    def test_shape_consistency(self, surface):
        assert surface.ids.shape == (len(surface.vs), len(surface.vg))

    def test_currents_nonnegative(self, surface):
        assert np.all(surface.ids >= 0.0)

    def test_higher_source_voltage_lowers_current(self, surface):
        """At a fixed absolute gate voltage, curves order by Vs (Fig. 1)."""
        top = surface.ids[:, -1]  # Vg = vdd column
        assert np.all(np.diff(top) < 0)

    def test_curve_lookup(self, surface):
        np.testing.assert_array_equal(surface.curve(0.4), surface.ids[2])

    def test_curve_lookup_unknown_vs(self, surface):
        with pytest.raises(KeyError):
            surface.curve(0.31)

    def test_flattened_alignment(self, surface):
        vg, vs, ids = surface.flattened()
        assert len(vg) == len(vs) == len(ids) == surface.ids.size
        # Spot-check one point.
        i = 3 * len(surface.vg) + 17
        assert vs[i] == surface.vs[3]
        assert vg[i] == surface.vg[17]
        assert ids[i] == surface.ids[3, 17]

    def test_custom_grids(self):
        vg = np.linspace(0, 1.8, 10)
        vs = np.array([0.0, 0.3])
        surface = sweep_id_vg(BsimLikeMosfet(), 1.8, vg=vg, vs=vs)
        assert surface.ids.shape == (2, 10)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            IvSurface(vg=np.zeros(5), vs=np.zeros(2), ids=np.zeros((3, 5)), vdd=1.8)

    def test_bulk_tied_to_source(self):
        """The sweep must evaluate vbs = 0 (bulk rides with the source)."""
        dev = BsimLikeMosfet()
        surface = sweep_id_vg(dev, 1.8, vg=np.array([1.8]), vs=np.array([0.4]))
        expected = dev.ids(1.8 - 0.4, 1.8 - 0.4, 0.0)
        assert surface.ids[0, 0] == pytest.approx(expected, rel=1e-12)
