"""Unit tests for the DC operating-point analysis."""

import pytest

from repro.devices import BsimLikeMosfet, Level1Mosfet, Level1Parameters
from repro.spice import Circuit, Dc, dc_operating_point


class TestLinear:
    def test_resistor_divider(self):
        c = Circuit()
        c.vsource("V1", "top", "0", Dc(10.0))
        c.resistor("R1", "top", "mid", 3e3)
        c.resistor("R2", "mid", "0", 1e3)
        sol = dc_operating_point(c)
        assert sol.voltage("mid") == pytest.approx(2.5)
        assert sol.current("R2") == pytest.approx(2.5e-3)

    def test_vsource_current_direction(self):
        c = Circuit()
        c.vsource("V1", "a", "0", Dc(1.0))
        c.resistor("R1", "a", "0", 1e3)
        sol = dc_operating_point(c)
        # 1 mA leaves the + terminal into the circuit: branch current is -1 mA.
        assert sol.current("V1") == pytest.approx(-1e-3)

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.isource("I1", "0", "a", Dc(2e-3))
        c.resistor("R1", "a", "0", 1e3)
        sol = dc_operating_point(c)
        assert sol.voltage("a") == pytest.approx(2.0)

    def test_inductor_is_dc_short(self):
        c = Circuit()
        c.vsource("V1", "a", "0", Dc(5.0))
        c.inductor("L1", "a", "b", 1e-9)
        c.resistor("R1", "b", "0", 1e3)
        sol = dc_operating_point(c)
        assert sol.voltage("b") == pytest.approx(5.0)
        assert sol.current("L1") == pytest.approx(5e-3)

    def test_capacitor_is_dc_open(self):
        c = Circuit()
        c.vsource("V1", "a", "0", Dc(5.0))
        c.resistor("R1", "a", "b", 1e3)
        c.capacitor("C1", "b", "0", 1e-12)
        c.resistor("R2", "b", "0", 1e6)
        sol = dc_operating_point(c)
        # No capacitor current: divider is 1k/1M.
        assert sol.voltage("b") == pytest.approx(5.0 * 1e6 / (1e6 + 1e3), rel=1e-6)


class TestNonlinear:
    def test_diode_connected_level1(self):
        """Diode-connected square-law device against the analytic solution."""
        params = Level1Parameters(lam=0.0, gamma=0.0, kp=100e-6, w=10e-6, l=1e-6, vth0=0.5)
        c = Circuit()
        c.vsource("V1", "vdd", "0", Dc(3.0))
        c.resistor("R1", "vdd", "d", 10e3)
        c.mosfet("M1", "d", "d", "0", "0", Level1Mosfet(params))
        sol = dc_operating_point(c)
        vd = sol.voltage("d")
        beta = params.kp * params.w / params.l
        # KCL: (3 - vd)/R = beta/2 (vd - vth)^2
        residual = (3.0 - vd) / 10e3 - 0.5 * beta * (vd - params.vth0) ** 2
        assert abs(residual) < 1e-9
        assert 0.5 < vd < 3.0

    def test_bsim_inverter_pulldown(self):
        c = Circuit()
        c.vsource("Vdd", "vdd", "0", Dc(1.8))
        c.vsource("Vg", "g", "0", Dc(1.8))
        c.resistor("Rl", "vdd", "d", 1e3)
        c.mosfet("M1", "d", "g", "0", "0", BsimLikeMosfet())
        sol = dc_operating_point(c)
        # Strong pulldown through 1k: output well below the rail.
        assert 0.0 < sol.voltage("d") < 1.0

    def test_source_time_parameter(self):
        from repro.spice import Ramp

        c = Circuit()
        c.vsource("V1", "a", "0", Ramp(0, 2, 0, 1e-9))
        c.resistor("R1", "a", "0", 1e3)
        sol = dc_operating_point(c, t=0.5e-9)
        assert sol.voltage("a") == pytest.approx(1.0)

    def test_current_of_non_branch_element_errors(self):
        c = Circuit()
        c.isource("I1", "0", "a", Dc(1e-3))
        c.resistor("R1", "a", "0", 1e3)
        sol = dc_operating_point(c)
        with pytest.raises(TypeError):
            sol.current("I1")
