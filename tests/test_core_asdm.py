"""Unit tests for the ASDM device model (paper Eqn 3)."""

import numpy as np
import pytest

from repro.core import AsdmMosfet, AsdmParameters


@pytest.fixture
def params():
    return AsdmParameters(k=5e-3, v0=0.61, lam=1.04)


class TestDrainCurrent:
    def test_linear_above_turn_on(self, params):
        i1 = params.drain_current(1.0)
        i2 = params.drain_current(1.4)
        assert i2 - i1 == pytest.approx(params.k * 0.4, rel=1e-12)

    def test_clamped_below_turn_on(self, params):
        assert params.drain_current(0.5) == 0.0
        assert params.drain_current(params.v0) == 0.0

    def test_source_voltage_penalty(self, params):
        """Raising the source by dv costs lam*dv of gate overdrive."""
        base = params.drain_current(1.5, 0.0)
        lifted = params.drain_current(1.5, 0.1)
        assert base - lifted == pytest.approx(params.k * params.lam * 0.1, rel=1e-12)

    def test_turn_on_gate_voltage(self, params):
        vs = 0.2
        von = float(params.turn_on_gate_voltage(vs))
        assert von == pytest.approx(params.v0 + params.lam * vs)
        assert params.drain_current(von - 1e-9, vs) == 0.0
        assert params.drain_current(von + 0.1, vs) > 0.0

    def test_array_evaluation(self, params):
        vg = np.linspace(0, 1.8, 50)
        out = params.drain_current(vg, 0.1)
        assert out.shape == (50,)
        assert np.all(out >= 0)


class TestScaling:
    def test_scaled_multiplies_k_only(self, params):
        wide = params.scaled(3.0)
        assert wide.k == pytest.approx(3 * params.k)
        assert wide.v0 == params.v0
        assert wide.lam == params.lam

    def test_scaled_invalid(self, params):
        with pytest.raises(ValueError):
            params.scaled(0.0)

    def test_parallel_devices_equivalence(self, params):
        """N devices at (vg, vs) carry the same current as one scaled(N)."""
        n = 7
        assert params.scaled(n).drain_current(1.3, 0.05) == pytest.approx(
            n * params.drain_current(1.3, 0.05), rel=1e-12
        )


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AsdmParameters(k=0.0, v0=0.6, lam=1.0)
        with pytest.raises(ValueError):
            AsdmParameters(k=1e-3, v0=-0.1, lam=1.0)
        with pytest.raises(ValueError):
            AsdmParameters(k=1e-3, v0=0.6, lam=0.0)


class TestAsdmMosfet:
    def test_matches_eqn3_with_drain_at_rail(self, params):
        """With vds = vdd - vs the wrapper reproduces Eqn (3) exactly."""
        dev = AsdmMosfet(params, vdd=1.8)
        vg, vs = 1.5, 0.25
        assert dev.ids(vg - vs, 1.8 - vs) == pytest.approx(
            params.drain_current(vg, vs), rel=1e-12
        )

    def test_cutoff_when_off(self, params):
        dev = AsdmMosfet(params, vdd=1.8)
        assert dev.ids(0.3, 1.8) == 0.0

    def test_zero_for_nonpositive_vds(self, params):
        dev = AsdmMosfet(params, vdd=1.8)
        assert dev.ids(1.5, 0.0) == 0.0
        assert dev.ids(1.5, -0.5) == 0.0

    def test_vdd_validation(self, params):
        with pytest.raises(ValueError):
            AsdmMosfet(params, vdd=0.0)
