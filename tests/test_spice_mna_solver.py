"""Direct unit tests for MNA assembly and the Newton solver."""

import numpy as np
import pytest

from repro.spice import Circuit, ConvergenceError, Dc
from repro.spice.mna import MnaSystem
from repro.spice.solver import newton_solve


def divider():
    c = Circuit()
    c.vsource("V1", "top", "0", Dc(10.0))
    c.resistor("R1", "top", "mid", 3e3)
    c.resistor("R2", "mid", "0", 1e3)
    return c


class TestMnaSystem:
    def test_unknown_counts(self):
        c = divider()
        system = MnaSystem(c)
        assert system.num_node_unknowns == 2  # top, mid
        assert system.num_branch_unknowns == 1  # the V source
        assert system.size == 3

    def test_branch_assignment(self):
        c = Circuit()
        c.vsource("V1", "a", "0", Dc(1.0))
        c.inductor("L1", "a", "b", 1e-9)
        c.resistor("R1", "b", "0", 10.0)
        system = MnaSystem(c)
        v = c.element("V1")
        ind = c.element("L1")
        r = c.element("R1")
        assert v.branch_start == 0
        assert ind.branch_start == 1
        assert r.branch_start is None
        assert system.num_branch_unknowns == 2

    def test_assembled_matrix_structure(self):
        c = divider()
        system = MnaSystem(c)
        x = np.zeros(system.size)
        ctx = system.context("dc", 0.0, 1.0, "be", {}, x, 1e-12)
        system.assemble(ctx)
        g1, g2 = 1 / 3e3, 1 / 1e3
        top = c.node_id("top") - 1
        mid = c.node_id("mid") - 1
        assert ctx.A[top, top] == pytest.approx(g1)
        assert ctx.A[mid, mid] == pytest.approx(g1 + g2)
        assert ctx.A[top, mid] == pytest.approx(-g1)
        # Branch row: v(top) = 10.
        row = system.num_node_unknowns
        assert ctx.A[row, top] == pytest.approx(1.0)
        assert ctx.z[row] == pytest.approx(10.0)

    def test_context_voltage_accessor(self):
        c = divider()
        system = MnaSystem(c)
        x = np.array([10.0, 2.5, -2.5e-3])
        ctx = system.context("dc", 0.0, 1.0, "be", {}, x, 1e-12)
        assert ctx.v(0) == 0.0
        assert ctx.v(c.node_id("mid")) == 2.5


class TestNewtonSolver:
    def test_linear_circuit_converges_fast(self):
        c = divider()
        system = MnaSystem(c)
        x, ctx = newton_solve(system, "dc", 0.0, 1.0, "be", {}, np.zeros(system.size))
        assert x[c.node_id("mid") - 1] == pytest.approx(2.5)

    def test_iteration_budget_enforced(self):
        """An impossible budget raises ConvergenceError, not a hang."""
        from repro.devices import BsimLikeMosfet

        c = Circuit()
        c.vsource("Vdd", "vdd", "0", Dc(1.8))
        c.resistor("R1", "vdd", "d", 1e3)
        c.mosfet("M1", "d", "vdd", "0", "0", BsimLikeMosfet())
        system = MnaSystem(c)
        with pytest.raises(ConvergenceError):
            newton_solve(
                system, "dc", 0.0, 1.0, "be", {}, np.zeros(system.size), max_iter=1
            )

    def test_damping_limits_update(self):
        """Large initial error still converges thanks to step limiting."""
        from repro.devices import BsimLikeMosfet

        c = Circuit()
        c.vsource("Vdd", "vdd", "0", Dc(1.8))
        c.resistor("R1", "vdd", "d", 100.0)
        c.mosfet("M1", "d", "vdd", "0", "0", BsimLikeMosfet())
        system = MnaSystem(c)
        # A badly wrong start: damping walks it home at <= 0.5 V/iteration.
        x0 = np.full(system.size, 5.0)
        x, _ = newton_solve(system, "dc", 0.0, 1.0, "be", {}, x0)
        assert 0.0 < x[c.node_id("d") - 1] < 1.8

    def test_singular_system_falls_back_to_lstsq(self):
        """A floating node (all-gmin) still produces a finite solution."""
        c = Circuit()
        c.resistor("R1", "a", "b", 1e3)  # a-b floating island
        c.resistor("R2", "b", "a", 1e3)
        system = MnaSystem(c)
        x, _ = newton_solve(system, "dc", 0.0, 1.0, "be", {}, np.zeros(system.size))
        assert np.all(np.isfinite(x))
