"""Shared fixtures: technology cards and cached model fits.

Model extraction sweeps the golden device over a few hundred bias points;
doing it once per session (it is also lru-cached inside
``repro.experiments.common``) keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import FittedModels, fitted_models
from repro.process import TSMC018, get_technology


@pytest.fixture(scope="session")
def tech018():
    return TSMC018


@pytest.fixture(scope="session")
def models018() -> FittedModels:
    return fitted_models("tsmc018")


@pytest.fixture(scope="session")
def asdm018(models018):
    return models018.asdm


@pytest.fixture(scope="session", params=["tsmc018", "tsmc025", "tsmc035"])
def any_tech(request):
    return get_technology(request.param)
