"""Memoized-simulation correctness: key resolution, freezing, telemetry.

Regression coverage for two former bugs in the golden-simulation cache:

* the memo key ignored the process-global backend defaults, so flipping
  ``set_default_sparse``/``REPRO_SPARSE`` or ``set_default_engine``/
  ``REPRO_ENGINE`` between calls could serve a result (and telemetry)
  computed under the *old* backend — now the resolved backend snapshot is
  part of the key and a flip forces a recompute;
* ``simulate_many``'s pooled scalar path folded *every* worker result's
  telemetry into the parent's session aggregator, double counting Newton
  work whenever a fork-inherited warm memo answered inside a worker — now
  only freshly computed results are recorded.

Plus the shared-result safety contract: memoized waveform arrays are
frozen, so accidental mutation raises instead of corrupting later hits.
"""

import pytest

from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.engine import default_engine, set_default_engine
from repro.analysis.simulate import (
    resolved_backend,
    simulate_many,
    simulate_ssn_cache_clear,
    simulate_ssn_cache_stats,
    simulate_ssn_cached,
    simulate_ssn_cached_fresh,
    ssn_memo_key,
)
from repro.spice.mna import default_sparse_mode, set_default_sparse
from repro.spice.telemetry import (
    disable_session_telemetry,
    enable_session_telemetry,
)
from repro.spice.transient import TransientOptions


@pytest.fixture(autouse=True)
def _clean_cache_and_defaults():
    simulate_ssn_cache_clear()
    set_default_engine(None)
    set_default_sparse(None)
    disable_session_telemetry()
    yield
    simulate_ssn_cache_clear()
    set_default_engine(None)
    set_default_sparse(None)
    disable_session_telemetry()


@pytest.fixture
def spec(tech018):
    return DriverBankSpec(
        technology=tech018, n_drivers=1, inductance=1e-9, rise_time=0.5e-9
    )


class TestBackendResolution:
    def test_defaults_resolve(self):
        assert default_engine() == "scalar"
        assert default_sparse_mode() == "auto"
        backend = dict(resolved_backend())
        assert set(backend) == {"engine", "kernel", "sparse"}

    def test_setters_and_env_feed_the_snapshot(self, monkeypatch):
        set_default_engine("batch")
        assert dict(resolved_backend())["engine"] == "batch"
        set_default_engine(None)
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        assert dict(resolved_backend())["engine"] == "batch"
        set_default_sparse("on")
        assert dict(resolved_backend())["sparse"] == "on"
        set_default_sparse(None)
        monkeypatch.setenv("REPRO_SPARSE", "off")
        assert dict(resolved_backend())["sparse"] == "off"

    def test_explicit_sparse_option_wins_over_the_default(self):
        set_default_sparse("on")
        options = TransientOptions(sparse=False)
        assert dict(resolved_backend(options))["sparse"] == "False"
        # "auto" in the options defers to the process default.
        assert dict(resolved_backend(TransientOptions()))["sparse"] == "on"


class TestMemoKeying:
    def test_repeat_call_hits(self, spec):
        first = simulate_ssn_cached(spec)
        again = simulate_ssn_cached(spec)
        assert again is first
        stats = simulate_ssn_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_fresh_flag_reports_compute_vs_hit(self, spec):
        sim, fresh = simulate_ssn_cached_fresh(spec)
        assert fresh is True
        again, fresh = simulate_ssn_cached_fresh(spec)
        assert fresh is False and again is sim

    def test_sparse_default_flip_forces_recompute(self, spec):
        baseline = simulate_ssn_cached(spec)
        set_default_sparse("on")
        _, fresh = simulate_ssn_cached_fresh(spec)
        assert fresh is True
        set_default_sparse(None)
        again, fresh = simulate_ssn_cached_fresh(spec)
        assert fresh is False and again is baseline

    def test_engine_default_flip_forces_recompute(self, spec):
        baseline = simulate_ssn_cached(spec)
        set_default_engine("batch")
        _, fresh = simulate_ssn_cached_fresh(spec)
        assert fresh is True
        set_default_engine(None)
        again, fresh = simulate_ssn_cached_fresh(spec)
        assert fresh is False and again is baseline

    def test_env_flip_forces_recompute(self, spec, monkeypatch):
        simulate_ssn_cached(spec)
        monkeypatch.setenv("REPRO_SPARSE", "on")
        _, fresh = simulate_ssn_cached_fresh(spec)
        assert fresh is True
        monkeypatch.setenv("REPRO_ENGINE", "batch")
        _, fresh = simulate_ssn_cached_fresh(spec)
        assert fresh is True

    def test_memo_key_is_hashable_and_backend_tagged(self, spec):
        key = ssn_memo_key(spec)
        assert hash(key) == hash(ssn_memo_key(spec))
        assert dict(key[-1]) == dict(resolved_backend())
        set_default_sparse("on")
        assert ssn_memo_key(spec) != key


class TestFrozenResults:
    def test_memoized_waveforms_reject_mutation(self, spec):
        sim = simulate_ssn_cached(spec)
        for wf in (sim.ssn, sim.inductor_current, sim.driver_current,
                   sim.input_voltage, sim.output_voltage):
            with pytest.raises(ValueError):
                wf.y[0] = 1.0
            with pytest.raises(ValueError):
                wf.t[0] = 1.0

    def test_hit_returns_the_same_frozen_object(self, spec):
        first = simulate_ssn_cached(spec)
        again = simulate_ssn_cached(spec)
        assert again is first
        assert not again.ssn.y.flags.writeable


class TestPooledTelemetry:
    def _specs(self, tech, counts):
        return [
            DriverBankSpec(technology=tech, n_drivers=n, inductance=1e-9,
                           rise_time=0.5e-9)
            for n in counts
        ]

    def test_fresh_runs_record_session_telemetry(self, tech018):
        specs = self._specs(tech018, (1, 2))
        session = enable_session_telemetry()
        simulate_many(specs, max_workers=2, engine="scalar")
        assert session.newton_solves > 0

    def test_memo_hits_do_not_rerecord_session_telemetry(self, tech018):
        """The former double-count: pool workers fork with a warm memo.

        Everything below was already simulated (and its Newton work
        recorded) before the session aggregator is armed; whether the map
        then runs serially (in-process memo hits) or in fork-started
        workers (inherited-memo hits), no *new* solver work happens, so
        the session must stay at zero.
        """
        specs = self._specs(tech018, (1, 2))
        for spec in specs:
            simulate_ssn_cached(spec)
        session = enable_session_telemetry()
        simulate_many(specs * 2, max_workers=2, engine="scalar")
        assert session.newton_solves == 0
        assert session.newton_iterations == 0

    def test_duplicate_specs_in_one_pooled_map_count_once(self, tech018):
        """Four duplicates across two workers solve at most twice.

        The former bug recorded every worker *result* (4x one run's
        solves); the fix records fresh computes only — at most one per
        worker, exactly one on the serial fallback.
        """
        (spec,) = self._specs(tech018, (3,))
        session = enable_session_telemetry()
        from repro.analysis.simulate import simulate_ssn

        simulate_ssn(spec)
        per_run = session.newton_solves
        assert per_run > 0
        disable_session_telemetry()
        simulate_ssn_cache_clear()
        session = enable_session_telemetry()
        simulate_many([spec] * 4, max_workers=2, engine="scalar")
        assert per_run <= session.newton_solves <= 2 * per_run
