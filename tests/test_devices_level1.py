"""Unit tests for the square-law (level-1) MOSFET model."""

import numpy as np
import pytest

from repro.devices import Level1Mosfet, Level1Parameters


@pytest.fixture
def dev():
    return Level1Mosfet(Level1Parameters(lam=0.0, gamma=0.0))


class TestCutoff:
    def test_zero_current_below_threshold(self, dev):
        assert dev.ids(dev.params.vth0 - 0.01, 1.8) == 0.0

    def test_zero_current_at_zero_gate(self, dev):
        assert dev.ids(0.0, 1.8) == 0.0

    def test_zero_current_exactly_at_threshold(self, dev):
        assert dev.ids(dev.params.vth0, 1.8) == 0.0


class TestSaturation:
    def test_quadratic_overdrive(self, dev):
        p = dev.params
        beta = p.kp * p.w / p.l
        vov = 0.7
        expected = 0.5 * beta * vov**2
        assert dev.ids(p.vth0 + vov, 1.8) == pytest.approx(expected, rel=1e-12)

    def test_current_doubles_with_width(self):
        lo = Level1Mosfet(Level1Parameters(w=10e-6, lam=0.0))
        hi = Level1Mosfet(Level1Parameters(w=20e-6, lam=0.0))
        assert hi.ids(1.2, 1.8) == pytest.approx(2 * lo.ids(1.2, 1.8), rel=1e-12)

    def test_saturation_flat_in_vds_without_clm(self, dev):
        assert dev.ids(1.2, 1.0) == pytest.approx(dev.ids(1.2, 1.8), rel=1e-12)

    def test_clm_increases_current_with_vds(self):
        dev = Level1Mosfet(Level1Parameters(lam=0.1))
        assert dev.ids(1.2, 1.8) > dev.ids(1.2, 1.0)


class TestTriode:
    def test_triode_below_saturation_current(self, dev):
        p = dev.params
        vov = 0.7
        assert dev.ids(p.vth0 + vov, 0.1) < dev.ids(p.vth0 + vov, vov)

    def test_triode_linear_limit_small_vds(self, dev):
        p = dev.params
        beta = p.kp * p.w / p.l
        vov = 0.7
        vds = 1e-4
        expected = beta * vov * vds
        assert dev.ids(p.vth0 + vov, vds) == pytest.approx(expected, rel=1e-3)

    def test_continuous_at_vdsat(self, dev):
        p = dev.params
        vov = 0.7
        below = dev.ids(p.vth0 + vov, vov - 1e-9)
        above = dev.ids(p.vth0 + vov, vov + 1e-9)
        assert below == pytest.approx(above, rel=1e-6)


class TestBodyEffect:
    def test_threshold_rises_with_reverse_body_bias(self):
        dev = Level1Mosfet(Level1Parameters())
        assert dev.threshold(-1.0) > dev.threshold(0.0)

    def test_threshold_at_zero_bias_is_vth0(self):
        dev = Level1Mosfet(Level1Parameters())
        assert dev.threshold(0.0) == pytest.approx(dev.params.vth0, abs=1e-12)

    def test_forward_bias_clamped(self):
        dev = Level1Mosfet(Level1Parameters())
        # phi - vbs < 0 should clamp, not produce NaN.
        assert np.isfinite(dev.threshold(2.0))

    def test_reverse_body_bias_reduces_current(self):
        dev = Level1Mosfet(Level1Parameters())
        assert dev.ids(1.2, 1.8, -0.5) < dev.ids(1.2, 1.8, 0.0)


class TestInterface:
    def test_array_broadcast(self, dev):
        vg = np.linspace(0, 1.8, 7)
        out = dev.ids(vg, 1.8)
        assert out.shape == (7,)

    def test_scalar_in_scalar_out(self, dev):
        assert isinstance(dev.ids(1.0, 1.8), float)

    def test_partials_match_finite_difference_defaults(self, dev):
        op = dev.partials(1.2, 1.8, 0.0)
        p = dev.params
        beta = p.kp * p.w / p.l
        assert op.gm == pytest.approx(beta * (1.2 - p.vth0), rel=1e-4)
        assert op.ids == pytest.approx(dev.ids(1.2, 1.8), rel=1e-12)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Level1Parameters(w=-1e-6)
        with pytest.raises(ValueError):
            Level1Parameters(kp=0.0)
        with pytest.raises(ValueError):
            Level1Parameters(phi=-0.1)
