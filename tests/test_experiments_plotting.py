"""Unit tests for the ASCII chart renderer."""

import numpy as np
import pytest

from repro.experiments.plotting import MARKERS, ascii_chart


class TestRendering:
    def test_basic_structure(self):
        chart = ascii_chart([0, 1, 2], {"a": [0.0, 1.0, 2.0]}, width=20, height=5)
        lines = chart.splitlines()
        plot_rows = [ln for ln in lines if "|" in ln]
        assert len(plot_rows) == 5
        assert "*=a" in lines[-1]

    def test_monotone_series_descends_visually(self):
        """A rising series occupies higher rows at larger x."""
        chart = ascii_chart([0, 1, 2, 3], {"a": [0, 1, 2, 3]}, width=24, height=8)
        rows = [ln.split("|", 1)[1] for ln in chart.splitlines() if "|" in ln]
        first_cols = [r.find("*") for r in rows if "*" in r]
        # Top rows (printed first) carry the later (larger) x positions.
        assert first_cols == sorted(first_cols, reverse=True)

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_chart(
            [0, 1], {"a": [0, 1], "b": [1, 0], "c": [0.5, 0.5]}, width=20, height=5
        )
        for marker, name in zip(MARKERS, ("a", "b", "c")):
            assert f"{marker}={name}" in chart

    def test_axis_labels(self):
        chart = ascii_chart([0, 1], {"a": [0, 1]}, x_label="N", y_label="V")
        assert "N" in chart.splitlines()[-2]
        assert chart.splitlines()[0].strip() == "V"

    def test_nan_values_skipped(self):
        chart = ascii_chart(
            [0, 1, 2], {"a": [0.0, float("nan"), 2.0]}, width=20, height=5
        )
        plot_area = "".join(
            ln.split("|", 1)[1] for ln in chart.splitlines() if "|" in ln
        )
        assert plot_area.count("*") == 2

    def test_y_axis_anchored_at_zero(self):
        chart = ascii_chart([0, 1], {"a": [0.5, 1.0]}, width=20, height=5)
        bottom_tick = [ln for ln in chart.splitlines() if "|" in ln][-1]
        assert bottom_tick.strip().startswith("0|")

    def test_deterministic(self):
        args = ([0, 1, 2], {"a": [0.1, 0.4, 0.2]})
        assert ascii_chart(*args) == ascii_chart(*args)


class TestValidation:
    def test_no_series(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {})

    def test_too_many_series(self):
        series = {f"s{i}": [0, 1] for i in range(len(MARKERS) + 1)}
        with pytest.raises(ValueError):
            ascii_chart([0, 1], series)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            ascii_chart([0, 1, 2], {"a": [0, 1]})

    def test_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"a": [0, 1]}, width=4, height=2)

    def test_all_nan(self):
        with pytest.raises(ValueError, match="NaN"):
            ascii_chart([0, 1], {"a": [float("nan")] * 2})

    def test_identical_x(self):
        with pytest.raises(ValueError, match="identical"):
            ascii_chart([1, 1], {"a": [0, 1]})
