"""Per-instance parity tests for the adaptive batched lockstep engine.

Adaptive stepping used to be a ``BatchIncompatibleError``; it now runs in
lockstep through phase-aligned step-doubling rounds with per-instance step
masks (:func:`repro.spice.batch._adaptive_lockstep`).  The contract this
file enforces: every instance of a batched adaptive run takes *exactly*
the step sequence the scalar adaptive engine would take for that circuit
alone — identical accepted/rejected/retried counts, identical Newton
effort — with waveforms within the engine's 1e-9 golden-parity budget
(converged iterates differ only at rounding between the two assembly
orders, so bitwise time equality is not part of the contract).
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.driver_bank import DriverBankSpec, build_driver_bank
from repro.analysis.engine import resolve_engine
from repro.analysis.simulate import default_stop_time, default_time_step
from repro.spice import Circuit, Ramp
from repro.spice import batch as batch_mod
from repro.spice.batch import batch_transient
from repro.spice.transient import TransientOptions, transient

#: Batched adaptive waveforms must stay within this of the scalar engine.
PARITY_TOL = 1e-9

#: Accepted times agree far tighter than the voltage budget: the step
#: controller sees rounding-level err differences only through the cube
#: root, so the grids coincide to ~1e-22 s.  1e-18 s leaves four orders
#: of margin while still catching any real controller divergence.
TIME_TOL = 1e-18

#: Reactive-element currents go through the companion conductance
#: (geq = 2C/h reaches several siemens at sub-picosecond half-steps),
#: which amplifies the rounding-level voltage differences between the two
#: assembly orders; their budget scales accordingly.
CURRENT_TOL = 1e-7

#: Telemetry counters that must match the scalar engine *exactly* per
#: instance — the step controller's full decision record.
PARITY_COUNTERS = (
    "accepted_steps",
    "step_rejections",
    "step_retries",
    "lte_rejections",
    "newton_solves",
    "newton_iterations",
)


def _driver_specs(tech, counts, **kwargs):
    base = DriverBankSpec(
        technology=tech, n_drivers=1, inductance=5e-9, rise_time=0.2e-9, **kwargs
    )
    return [dataclasses.replace(base, n_drivers=n) for n in counts]


def _grid(spec, coarsen=4.0):
    return default_stop_time(spec), coarsen * default_time_step(spec)


def _assert_adaptive_parity(scalar, batched, tol=PARITY_TOL):
    for s, b in zip(scalar, batched):
        for counter in PARITY_COUNTERS:
            sv = getattr(s.telemetry, counter)
            bv = getattr(b.telemetry, counter)
            assert sv == bv, f"{counter}: scalar {sv} != batched {bv}"
        assert len(s.times) == len(b.times)
        assert np.max(np.abs(s.times - b.times)) <= TIME_TOL
        for node in s.node_names:
            dv = np.max(np.abs(s.voltage(node).y - b.voltage(node).y))
            assert dv <= tol, f"node {node}: |dV| = {dv:.3e} V"
        for name in sorted(s._currents):
            di = np.max(np.abs(s.current(name).y - b.current(name).y))
            assert di <= CURRENT_TOL, f"current {name}: |dI| = {di:.3e} A"


def _run_pair(circuits_factory, tstop, dt, options):
    scalar = [transient(c, tstop, dt, options=options)
              for c in circuits_factory()]
    batched = batch_transient(circuits_factory(), tstop, dt, options=options)
    return scalar, batched


class TestAdaptivePerInstanceParity:
    @pytest.mark.parametrize("method", ["trap", "be"])
    def test_driver_ensemble(self, tech018, method):
        specs = _driver_specs(tech018, [1, 7, 19])
        tstop, dt = _grid(specs[0])
        options = TransientOptions(adaptive=True, method=method)
        scalar, batched = _run_pair(
            lambda: [build_driver_bank(s) for s in specs], tstop, dt, options)
        _assert_adaptive_parity(scalar, batched)
        assert all(b.telemetry.batch_fallbacks == 0 for b in batched)
        assert all(b.telemetry.extras.get("backend_dense_lu") == 1
                   for b in batched)

    def test_instances_step_independently(self, tech018):
        """The lockstep rounds are phase-aligned, not step-aligned: each
        instance keeps its own (t, h) and the ensemble must NOT be forced
        onto a shared grid.  Different driver counts stress the supply
        bounce differently, so their accepted-step counts diverge."""
        specs = _driver_specs(tech018, [1, 5, 13, 29])
        tstop, dt = _grid(specs[0])
        options = TransientOptions(adaptive=True)
        batched = batch_transient(
            [build_driver_bank(s) for s in specs], tstop, dt, options=options)
        accepted = [b.telemetry.accepted_steps for b in batched]
        assert all(a > 0 for a in accepted)
        assert len(set(accepted)) > 1, f"instances moved in lockstep: {accepted}"

    def test_linear_only_ensemble(self):
        """Linear ensembles take the direct-solve branch of each round:
        Newton iteration counters stay zero, parity must still hold."""
        def make():
            circuits = []
            for r in (10.0, 25.0, 80.0):
                c = Circuit("rlc")
                c.vsource("Vin", "in", "0", Ramp(0.0, 1.8, 0.1e-9, 0.2e-9))
                c.resistor("R1", "in", "mid", r)
                c.inductor("L1", "mid", "out", 4e-9, ic=0.0)
                c.capacitor("C1", "out", "0", 3e-12, ic=0.0)
                circuits.append(c)
            return circuits

        options = TransientOptions(adaptive=True)
        scalar, batched = _run_pair(make, 2.0e-9, 0.05e-9, options)
        _assert_adaptive_parity(scalar, batched)
        assert all(b.telemetry.newton_iterations == 0 for b in batched)

    def test_mask_steps_telemetry(self, tech018):
        """mask_steps counts the big/half/half phase rounds an instance
        stayed pending through — an adaptive-batch-only diagnostic that is
        zero on the scalar path and on fixed-step lockstep runs."""
        specs = _driver_specs(tech018, [1, 7])
        tstop, dt = _grid(specs[0])
        scalar, batched = _run_pair(
            lambda: [build_driver_bank(s) for s in specs], tstop, dt,
            TransientOptions(adaptive=True))
        assert all(s.telemetry.mask_steps == 0 for s in scalar)
        for b in batched:
            # Every accepted step consumed at least one phase round.
            assert b.telemetry.mask_steps >= b.telemetry.accepted_steps
            assert "adaptive-batch mask steps" in b.telemetry.format_report()

    def test_fixed_step_runs_keep_mask_steps_zero(self, tech018):
        specs = _driver_specs(tech018, [1, 7])
        tstop, dt = _grid(specs[0])
        batched = batch_transient(
            [build_driver_bank(s) for s in specs], tstop, dt)
        assert all(b.telemetry.mask_steps == 0 for b in batched)


class TestScalarFallback:
    def test_failed_instances_rerun_on_scalar_ladder(self, tech018, monkeypatch):
        """Sabotaged batched solves fail every instance out of the adaptive
        lockstep loop (IC solve first); each is transparently re-run on the
        scalar adaptive engine, so results are bitwise-equal to scalar."""
        monkeypatch.setattr(batch_mod._Rank1Lane, "prepare",
                            lambda self, *a, **k: None)
        monkeypatch.setattr(batch_mod, "_solve_stack",
                            lambda A, z: np.full(z.shape, np.nan))

        specs = _driver_specs(tech018, [3, 11])
        tstop, dt = _grid(specs[0])
        options = TransientOptions(adaptive=True)
        scalar = [transient(build_driver_bank(s), tstop, dt, options=options)
                  for s in specs]
        batched = batch_transient([build_driver_bank(s) for s in specs],
                                  tstop, dt, options=options)
        for s, b in zip(scalar, batched):
            assert np.array_equal(s.times, b.times)
            for node in s.node_names:
                assert np.array_equal(s.voltage(node).y, b.voltage(node).y)
            assert b.telemetry.batch_fallbacks == 1


class TestEngineRouting:
    def test_auto_routes_adaptive_ensembles_to_batch(self):
        """engine="auto" no longer needs a fixed-step carve-out: adaptive
        sweeps/Monte Carlo fleets resolve to the batched engine like any
        other multi-instance run."""
        assert resolve_engine("auto", n_items=8) == "batch"
        assert resolve_engine("batch", n_items=8) == "batch"
