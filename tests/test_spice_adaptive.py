"""Tests for the adaptive (step-doubling LTE) transient mode."""

import numpy as np
import pytest

from repro.spice import Circuit, Ramp, TransientOptions, transient


def rc_circuit():
    c = Circuit()
    c.resistor("R1", "a", "0", 1e3)
    c.capacitor("C1", "a", "0", 1e-12, ic=1.0)
    return c


def rlc_circuit():
    c = Circuit()
    c.vsource("Vs", "in", "0", Ramp(0, 1, 0, 1e-12))
    c.resistor("R", "in", "m", 10.0)
    c.inductor("L", "m", "o", 5e-9)
    c.capacitor("C", "o", "0", 1e-12, ic=0.0)
    return c


class TestAccuracy:
    def test_rc_tracks_exponential(self):
        res = transient(
            rc_circuit(), 5e-9, 0.5e-9,
            options=TransientOptions(adaptive=True, lte_rtol=1e-4),
        )
        v = res.voltage("a")
        for t in (0.5e-9, 1e-9, 3e-9):
            assert v.value_at(t) == pytest.approx(np.exp(-t / 1e-9), abs=2e-3)

    def test_rlc_matches_fixed_step(self):
        fixed = transient(rlc_circuit(), 3e-9, 1e-12)
        adaptive = transient(
            rlc_circuit(), 3e-9, 2e-10,
            options=TransientOptions(adaptive=True, lte_rtol=1e-4),
        )
        ts = np.linspace(1e-10, 3e-9, 50)
        diff = np.abs(
            fixed.voltage("o").value_at(ts) - adaptive.voltage("o").value_at(ts)
        )
        assert np.max(diff) < 1.5e-2

    def test_ringing_peak_preserved(self):
        adaptive = transient(
            rlc_circuit(), 3e-9, 2e-10,
            options=TransientOptions(adaptive=True, lte_rtol=1e-4),
        )
        zeta = (10.0 / 2) * np.sqrt(1e-12 / 5e-9)
        overshoot = 1 + np.exp(-np.pi * zeta / np.sqrt(1 - zeta**2))
        assert adaptive.voltage("o").peak()[1] == pytest.approx(overshoot, rel=5e-3)


class TestEfficiency:
    def test_fewer_steps_than_fixed(self):
        fixed = transient(rc_circuit(), 5e-9, 1e-11)
        adaptive = transient(
            rc_circuit(), 5e-9, 0.5e-9,
            options=TransientOptions(adaptive=True),
        )
        assert len(adaptive.times) < 0.3 * len(fixed.times)

    def test_step_grows_on_smooth_tail(self):
        res = transient(
            rc_circuit(), 10e-9, 1e-9,
            options=TransientOptions(adaptive=True, lte_rtol=1e-3),
        )
        steps = np.diff(res.times)
        # Late steps (decayed, smooth) grow far beyond the early ones.
        # (The very last step is clipped to land on tstop, so use the max.)
        assert np.max(steps) > 3 * steps[0]

    def test_tightening_tolerance_adds_steps(self):
        loose = transient(
            rc_circuit(), 5e-9, 0.5e-9,
            options=TransientOptions(adaptive=True, lte_rtol=1e-2),
        )
        tight = transient(
            rc_circuit(), 5e-9, 0.5e-9,
            options=TransientOptions(adaptive=True, lte_rtol=1e-5),
        )
        assert len(tight.times) > len(loose.times)


class TestBreakpoints:
    def test_ramp_corners_still_hit(self):
        c = Circuit()
        c.vsource("V1", "a", "0", Ramp(0, 1, 0.35e-9, 0.3e-9))
        c.resistor("R1", "a", "b", 1e3)
        c.capacitor("C1", "b", "0", 0.2e-12, ic=0.0)
        res = transient(
            c, 1.5e-9, 0.3e-9, options=TransientOptions(adaptive=True)
        )
        assert np.any(np.isclose(res.times, 0.35e-9, atol=1e-18))
        assert np.any(np.isclose(res.times, 0.65e-9, atol=1e-18))


class TestValidation:
    def test_bad_tolerances_rejected(self):
        with pytest.raises(ValueError):
            TransientOptions(adaptive=True, lte_rtol=0.0)
        with pytest.raises(ValueError):
            TransientOptions(adaptive=True, lte_atol=-1.0)
        with pytest.raises(ValueError):
            TransientOptions(adaptive=True, max_growth=1.0)


class TestSsnBank:
    def test_adaptive_matches_fixed_peak(self, tech018):
        from repro.analysis import DriverBankSpec, simulate_ssn

        spec = DriverBankSpec(
            technology=tech018, n_drivers=4, inductance=5e-9,
            capacitance=1e-12, rise_time=0.5e-9,
        )
        fixed = simulate_ssn(spec)
        adaptive = simulate_ssn(
            spec, dt=0.05e-9,
            options=TransientOptions(adaptive=True, lte_rtol=3e-4),
        )
        assert adaptive.peak_voltage == pytest.approx(fixed.peak_voltage, rel=5e-3)
