"""Unit tests for the device-model base interface."""

import numpy as np
import pytest

from repro.devices import Level1Mosfet, Level1Parameters, MosfetModel, OperatingPoint
from repro.devices.base import ensure_arrays


class QuadraticToy(MosfetModel):
    """Analytically differentiable toy: Id = vgs^2 * vds + vbs."""

    name = "toy"

    def ids(self, vgs, vds, vbs=0.0):
        vgs, vds, vbs = ensure_arrays(vgs, vds, vbs)
        out = vgs**2 * vds + vbs
        if out.ndim == 0:
            return float(out)
        return out


class TestFiniteDifferencePartials:
    def test_matches_analytic_derivatives(self):
        dev = QuadraticToy()
        op = dev.partials(1.5, 0.8, -0.2)
        assert op.ids == pytest.approx(1.5**2 * 0.8 - 0.2)
        assert op.gm == pytest.approx(2 * 1.5 * 0.8, rel=1e-6)
        assert op.gds == pytest.approx(1.5**2, rel=1e-6)
        assert op.gmbs == pytest.approx(1.0, rel=1e-6)

    def test_returns_operating_point(self):
        op = QuadraticToy().partials(1.0, 1.0)
        assert isinstance(op, OperatingPoint)

    def test_saturation_current_alias(self):
        dev = Level1Mosfet(Level1Parameters())
        assert dev.saturation_current(1.2, 1.8) == dev.ids(1.2, 1.8)


class TestEnsureArrays:
    def test_scalar_broadcast(self):
        a, b = ensure_arrays(1.0, 2.0)
        assert a.shape == () and b.shape == ()

    def test_mixed_broadcast(self):
        a, b = ensure_arrays(np.array([1.0, 2.0]), 3.0)
        assert a.shape == (2,)
        assert b.shape == (2,)
        np.testing.assert_array_equal(b, [3.0, 3.0])

    def test_outputs_are_writable_copies(self):
        src = np.array([1.0, 2.0])
        a, b = ensure_arrays(src, 0.5)
        a[0] = 99.0
        assert src[0] == 1.0
