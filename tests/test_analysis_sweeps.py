"""Unit tests for the sweep engine (using fast, tiny simulations)."""

import dataclasses
import math

import pytest

from repro.analysis import DriverBankSpec, sweep_driver_count, sweep_ground_capacitance
from repro.analysis.sweeps import SweepPoint, SweepResult, sweep


@pytest.fixture
def base(tech018):
    # Coarse rise time keeps each golden simulation fast for unit testing.
    return DriverBankSpec(
        technology=tech018, n_drivers=2, inductance=5e-9, rise_time=0.5e-9
    )


@pytest.fixture
def constant_estimator():
    return {"const": lambda spec: 0.123}


class TestSweepEngine:
    def test_points_in_order(self, base, constant_estimator):
        result = sweep_driver_count(base, [1, 2, 4], constant_estimator)
        assert result.values() == [1.0, 2.0, 4.0]

    def test_specs_carry_swept_value(self, base, constant_estimator):
        result = sweep_driver_count(base, [1, 4], constant_estimator)
        assert result.points[1].spec.n_drivers == 4

    def test_estimates_recorded(self, base, constant_estimator):
        result = sweep_driver_count(base, [2], constant_estimator)
        assert result.points[0].estimates == {"const": 0.123}

    def test_percent_error(self, base):
        result = sweep_driver_count(base, [2], {"exact": lambda spec: 1.0})
        point = result.points[0]
        expected = 100.0 * (1.0 - point.simulated_peak) / point.simulated_peak
        assert point.percent_error("exact") == pytest.approx(expected)

    def test_simulated_peaks_increase_with_n(self, base, constant_estimator):
        result = sweep_driver_count(base, [1, 4], constant_estimator)
        peaks = result.simulated_peaks()
        assert peaks[1] > peaks[0]

    def test_estimator_names(self, base):
        result = sweep_driver_count(
            base, [1], {"b": lambda s: 1.0, "a": lambda s: 2.0}
        )
        assert result.estimator_names == ["a", "b"]

    def test_capacitance_sweep_replaces_field(self, base, constant_estimator):
        result = sweep_ground_capacitance(base, [1e-12, 2e-12], constant_estimator)
        assert result.points[0].spec.capacitance == pytest.approx(1e-12)
        assert result.points[1].spec.capacitance == pytest.approx(2e-12)

    def test_generic_sweep_custom_apply(self, base, constant_estimator):
        result = sweep(
            "load",
            base,
            [5e-12, 20e-12],
            lambda spec, v: dataclasses.replace(spec, load_capacitance=float(v)),
            constant_estimator,
        )
        assert result.knob == "load"
        assert result.points[1].spec.load_capacitance == pytest.approx(20e-12)


class TestDegenerateSweepData:
    def test_percent_error_of_zero_peak_is_nan(self, base):
        point = SweepPoint(
            value=1.0, spec=base, simulated_peak=0.0, estimates={"e": 0.5}
        )
        assert math.isnan(point.percent_error("e"))

    def test_empty_sweep_to_csv_writes_header_only(self, tmp_path):
        result = SweepResult(knob="n_drivers", points=())
        out = tmp_path / "empty.csv"
        result.to_csv(out)
        assert out.read_text() == "n_drivers,simulated\n"

    def test_empty_sweep_accessors(self):
        result = SweepResult(knob="n_drivers", points=())
        assert result.values() == []
        assert result.estimator_names == []


class TestCsvRoundTrip:
    @pytest.fixture
    def result(self, base):
        # Irrational-ish values exercise full-precision serialization.
        points = tuple(
            SweepPoint(
                value=float(n),
                spec=dataclasses.replace(base, n_drivers=n),
                simulated_peak=0.1 + math.sqrt(n) / 7.0,
                estimates={"beta": n / 3.0, "alpha": math.pi / n},
            )
            for n in (1, 2, 5)
        )
        return SweepResult(knob="n_drivers", points=points)

    def test_column_order_deterministic(self, result, tmp_path):
        out = tmp_path / "sweep.csv"
        result.to_csv(out)
        header = out.read_text().splitlines()[0]
        # Knob, simulated, then estimators sorted by name — regardless of
        # the insertion order of the estimates dict.
        assert header == "n_drivers,simulated,alpha,beta"

    def test_values_roundtrip_exactly(self, result, tmp_path):
        out = tmp_path / "sweep.csv"
        result.to_csv(out)
        lines = out.read_text().splitlines()
        assert len(lines) == 1 + len(result.points)
        for line, p in zip(lines[1:], result.points):
            value, simulated, alpha, beta = (float(f) for f in line.split(","))
            # repr-serialized floats read back bit-for-bit, not approximately.
            assert value == p.value
            assert simulated == p.simulated_peak
            assert alpha == p.estimates["alpha"]
            assert beta == p.estimates["beta"]
