"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.spice.telemetry import session_telemetry


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fit_defaults(self):
        args = build_parser().parse_args(["fit"])
        assert args.tech == "tsmc018"
        assert args.strength == 1.0

    def test_estimate_requires_drivers(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate"])

    def test_unknown_tech_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fit", "--tech", "tsmc007"])

    def test_report_choices(self):
        args = build_parser().parse_args(["report", "fig1"])
        assert args.experiment == "fig1"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "fig9"])


class TestCommands:
    def test_fit_prints_parameters(self, capsys):
        assert main(["fit"]) == 0
        out = capsys.readouterr().out
        assert "ASDM" in out
        assert "lambda" in out
        assert "alpha-power" in out

    def test_estimate_l_only(self, capsys):
        assert main(["estimate", "-n", "8"]) == 0
        out = capsys.readouterr().out
        assert "Eqn 7" in out
        assert "Table 1" not in out

    def test_estimate_with_capacitance(self, capsys):
        assert main(["estimate", "-n", "8", "-c", "1e-12"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "post-ramp extension" in out

    def test_plan(self, capsys):
        assert main(["plan", "-b", "0.4", "-w", "16"]) == 0
        out = capsys.readouterr().out
        assert "max simultaneous drivers" in out
        assert "skewed launch" in out

    def test_report_fig1(self, capsys):
        assert main(["report", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1" in out

    def test_report_damping(self, capsys):
        assert main(["report", "damping"]) == 0
        out = capsys.readouterr().out
        assert "Eqn (27)" in out


class TestTelemetryFlags:
    def test_telemetry_prints_solver_counters(self, capsys):
        # fig2 runs real transients, so the counters must be nonzero.
        assert main(["report", "fig2", "--telemetry"]) == 0
        out = capsys.readouterr().out
        assert "solver telemetry:" in out
        assert "unrecovered failures:         0" in out

    def test_telemetry_json_writes_run_summary(self, capsys, tmp_path):
        path = tmp_path / "telemetry.json"
        assert main(["report", "fig2", "--telemetry-json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "solver telemetry:" not in out  # json flag alone stays quiet
        data = json.loads(path.read_text())
        assert data["ok"] is True
        assert data["unrecovered_failures"] == 0
        assert data["newton_solves"] > 0
        assert data["accepted_steps"] > 0

    def test_session_disabled_after_command(self, capsys):
        assert main(["report", "fig2", "--telemetry"]) == 0
        capsys.readouterr()
        assert session_telemetry() is None

    def test_no_flags_no_telemetry_output(self, capsys):
        assert main(["estimate", "-n", "8"]) == 0
        assert "solver telemetry:" not in capsys.readouterr().out
