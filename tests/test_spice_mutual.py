"""Unit tests for mutual inductance (coupled package pins)."""

import numpy as np
import pytest

from repro.spice import Circuit, Dc, transient


def parallel_pair_circuit(coupling):
    """Two identical 10 nH inductors in parallel behind 100 ohms."""
    c = Circuit()
    c.vsource("V1", "in", "0", Dc(1.0))
    c.resistor("R1", "in", "a", 100.0)
    c.inductor("L1", "a", "0", 10e-9)
    c.inductor("L2", "a", "0", 10e-9)
    if coupling:
        c.mutual("K1", "L1", "L2", coupling)
    return c


class TestCoupledPair:
    @pytest.mark.parametrize("k", [0.2, 0.5, 0.9])
    def test_effective_inductance(self, k):
        """Equal currents through a coupled pair see L_eff = L(1+k)/2."""
        res = transient(parallel_pair_circuit(k), 3e-10, 2e-13)
        leff = 10e-9 * (1 + k) / 2
        tau = leff / 100.0
        t = 5e-11
        assert res.voltage("a").value_at(t) == pytest.approx(np.exp(-t / tau), abs=2e-3)

    def test_symmetric_current_split(self):
        res = transient(parallel_pair_circuit(0.5), 3e-10, 2e-13)
        i1 = res.current("L1")
        i2 = res.current("L2")
        assert i1.max_abs_difference(i2) < 1e-9

    def test_zero_coupling_limit(self):
        uncoupled = transient(parallel_pair_circuit(None), 3e-10, 2e-13)
        tiny = transient(parallel_pair_circuit(1e-6), 3e-10, 2e-13)
        assert uncoupled.voltage("a").max_abs_difference(tiny.voltage("a")) < 1e-4

    def test_transformer_induces_secondary_voltage(self):
        """Open-secondary transformer: v2 = (M/L1) * v1."""
        k = 0.8
        c = Circuit()
        c.vsource("V1", "in", "0", Dc(1.0))
        c.resistor("R1", "in", "p", 50.0)
        c.inductor("L1", "p", "0", 10e-9)
        c.inductor("L2", "s", "0", 10e-9)
        c.resistor("Rload", "s", "0", 1e6)  # ~open secondary
        c.mutual("K1", "L1", "L2", k)
        res = transient(c, 2e-10, 1e-13)
        t = 2e-11
        v1 = res.voltage("p").value_at(t)
        v2 = res.voltage("s").value_at(t)
        assert v2 == pytest.approx(k * v1, rel=0.02)


class TestValidation:
    def test_coupling_out_of_range(self):
        c = parallel_pair_circuit(None)
        with pytest.raises(ValueError):
            c.mutual("K1", "L1", "L2", 1.0)
        with pytest.raises(ValueError):
            c.mutual("K2", "L1", "L2", 0.0)

    def test_self_coupling_rejected(self):
        from repro.spice.elements import MutualInductance

        c = parallel_pair_circuit(None)
        la = c.element("L1")
        with pytest.raises(ValueError, match="distinct"):
            MutualInductance("K1", la, la, 0.5)

    def test_non_inductor_rejected(self):
        c = parallel_pair_circuit(None)
        with pytest.raises(TypeError):
            c.mutual("K1", "L1", "R1", 0.5)

    def test_mutual_value(self):
        c = parallel_pair_circuit(None)
        coupled = c.mutual("K1", "L1", "L2", 0.5)
        assert coupled.mutual == pytest.approx(0.5 * 10e-9)
