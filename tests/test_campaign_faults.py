"""Failure-path tests driven by the deterministic fault injector.

Every recovery mechanism is exercised, not trusted: injected Newton
divergence walks the retry ladder, killed pool workers degrade to the
serial path, stalls trip the per-task deadline, a crash mid checkpoint
write leaves the previous journal intact, and an injected interrupt plus
``resume=True`` reproduces the uninterrupted run bit for bit.  Telemetry
must report the *exact* injected counts — recovery that cannot be audited
is indistinguishable from silent corruption.
"""

import dataclasses
import json
import warnings

import numpy as np
import pytest

from repro.analysis.campaign import (
    CampaignConfig,
    CampaignError,
    CampaignRunner,
)
from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.simulate import simulate_many, simulate_ssn_cache_clear
from repro.analysis.sweeps import sweep
from repro.testing import faults
from repro.testing.faults import InjectedCrash


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


def _specs(tech, counts):
    base = DriverBankSpec(
        technology=tech, n_drivers=1, inductance=1e-9, rise_time=0.5e-9
    )
    return [dataclasses.replace(base, n_drivers=n) for n in counts]


def _config(**kwargs):
    kwargs.setdefault("backoff_base", 0.0)
    kwargs.setdefault("max_workers", 1)
    kwargs.setdefault("engine", "scalar")
    return CampaignConfig(**kwargs)


class TestInjectorUnits:
    def test_parse_format_round_trip(self):
        spec = "newton:chunk=1:phase=bulk,worker:task=0,stall:seconds=0.5"
        rules = faults.parse_faults(spec)
        assert [r.kind for r in rules] == ["newton", "worker", "stall"]
        assert rules[0].chunk == 1 and rules[0].phase == "bulk"
        assert rules[2].seconds == 0.5
        assert faults.parse_faults(faults.format_faults(rules)) == rules

    def test_unknown_kind_and_selector_raise(self):
        with pytest.raises(ValueError):
            faults.parse_faults("explode")
        with pytest.raises(ValueError):
            faults.parse_faults("newton:flavor=spicy")

    def test_scope_nests_and_restores(self):
        with faults.scope(chunk=1):
            with faults.scope(task=3, phase="bulk"):
                assert faults.current_scope() == {
                    "chunk": 1, "task": 3, "phase": "bulk"
                }
            assert faults.current_scope() == {"chunk": 1}
        assert faults.current_scope() == {}

    def test_fire_respects_scope_and_at(self):
        rules = faults.install_faults("engine:chunk=2:at=1", mirror_env=False)
        with faults.scope(chunk=1):
            assert faults.fire("engine") is None  # wrong chunk
        with faults.scope(chunk=2):
            assert faults.fire("engine") is None  # matching probe 0: at=1
            assert faults.fire("engine") is rules[0]  # matching probe 1
            assert faults.fire("engine") is None  # past the at= position
        assert rules[0].fired == 1

    def test_clear_faults_disarms(self):
        faults.install_faults("engine")
        faults.clear_faults()
        assert faults.fire("engine") is None


class TestRecoveryLadder:
    def test_newton_divergence_retries_then_recovers(self, tech018):
        specs = _specs(tech018, [1, 2, 3])
        clean = [s.peak_voltage for s in simulate_many(specs, engine="scalar")]
        simulate_ssn_cache_clear()  # force the bulk attempts through the solver
        faults.install_faults("newton:chunk=0:phase=bulk")
        runner = CampaignRunner(_config(chunk_size=3, max_retries=2))
        summaries = runner.run_simulate(specs)
        faults.clear_faults()

        assert [s.peak_voltage for s in summaries] == clean
        tel = runner.telemetry
        assert tel.retries == 2  # both re-attempts of the bulk chunk
        assert tel.chunks_failed == 1
        assert tel.degradations == 0  # recovered on the same scalar rung
        assert tel.unrecovered_failures == 0

    def test_worker_crash_degrades_to_serial(self, tech018):
        specs = _specs(tech018, [1, 2, 3, 4])
        clean = [s.peak_voltage for s in simulate_many(specs, engine="scalar")]
        faults.install_faults("worker:chunk=0:task=0")
        runner = CampaignRunner(_config(chunk_size=4, max_workers=2))
        with pytest.warns(RuntimeWarning, match="process pool broke"):
            summaries = runner.run_simulate(specs)
        faults.clear_faults()

        assert [s.peak_voltage for s in summaries] == clean
        assert runner.telemetry.degradations == 1
        assert runner.telemetry.chunks_failed == 0  # the chunk still succeeded
        assert runner.telemetry.unrecovered_failures == 0

    def test_stall_past_deadline_is_retried(self, tech018):
        specs = _specs(tech018, [1, 2])
        clean = [s.peak_voltage for s in simulate_many(specs, engine="scalar")]
        faults.install_faults(
            "stall:task=0:seconds=0.05:phase=bulk:attempts=0"
        )
        runner = CampaignRunner(
            _config(chunk_size=2, max_retries=2, deadline=0.01)
        )
        summaries = runner.run_simulate(specs)
        faults.clear_faults()

        assert [s.peak_voltage for s in summaries] == clean
        assert runner.telemetry.retries == 1
        assert runner.telemetry.unrecovered_failures == 0

    def test_batch_engine_fault_degrades_to_scalar(self, tech018):
        specs = _specs(tech018, [2, 3, 4])
        clean = [s.peak_voltage for s in simulate_many(specs, engine="scalar")]
        faults.install_faults("engine:engine=batch")
        runner = CampaignRunner(
            _config(chunk_size=3, max_retries=1, engine="batch")
        )
        summaries = runner.run_simulate(specs)
        faults.clear_faults()

        # Every instance left the batch rung for the scalar fast path, so
        # the results are bitwise the scalar engine's results.
        assert [s.peak_voltage for s in summaries] == clean
        assert all(s.engine == "scalar" for s in summaries)
        tel = runner.telemetry
        assert tel.chunks_failed == 1
        assert tel.degradations == len(specs)
        assert tel.unrecovered_failures == 0

    def test_scalar_failure_lands_on_legacy_rung(self, tech018):
        specs = _specs(tech018, [1, 2])
        clean = [s.peak_voltage for s in simulate_many(specs, engine="scalar")]
        simulate_ssn_cache_clear()
        faults.install_faults(
            "newton:phase=bulk,newton:phase=instance:engine=scalar"
        )
        runner = CampaignRunner(_config(chunk_size=2, max_retries=1))
        summaries = runner.run_simulate(specs)
        faults.clear_faults()

        assert all(s.engine == "legacy" for s in summaries)
        # The legacy reference engine is numerically equivalent, not
        # bit-identical, to the fast path: hold it to the parity tolerance.
        for summary, peak in zip(summaries, clean):
            assert summary.peak_voltage == pytest.approx(peak, abs=1e-9)
        tel = runner.telemetry
        assert tel.chunks_failed == 1
        assert tel.degradations == len(specs)  # scalar -> legacy, per instance
        assert tel.unrecovered_failures == 0

    def test_exhausted_ladder_raises_campaign_error(self, tech018):
        specs = _specs(tech018, [1])
        simulate_ssn_cache_clear()
        faults.install_faults("newton")  # matches every rung and phase
        runner = CampaignRunner(_config(chunk_size=1, max_retries=0))
        with pytest.raises(CampaignError) as err:
            runner.run_simulate(specs)
        faults.clear_faults()
        assert err.value.telemetry is not None
        assert err.value.telemetry.unrecovered_failures == 1


class TestCrashAndResume:
    def test_torn_checkpoint_write_leaves_previous_journal(
        self, tech018, tmp_path
    ):
        specs = _specs(tech018, [1, 2, 3, 4])
        ckpt = tmp_path / "run.jsonl"
        # Probe 0 is the fresh-run header write; probe 1 is the commit
        # after chunk 0 — crash there, mid temp-file write.
        faults.install_faults("crash-write:at=1")
        runner = CampaignRunner(_config(checkpoint=ckpt, chunk_size=2))
        with pytest.raises(InjectedCrash):
            runner.run_simulate(specs)
        faults.clear_faults()

        # The journal on disk is the last successfully committed state
        # (the header-only file) — complete, parseable, no torn temp files.
        lines = ckpt.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["version"] == 1
        assert not list(tmp_path.glob("*.tmp"))

        resumed = CampaignRunner(
            _config(checkpoint=ckpt, chunk_size=2, resume=True)
        ).run_simulate(specs)
        clean = [s.peak_voltage for s in simulate_many(specs, engine="scalar")]
        assert [s.peak_voltage for s in resumed] == clean

    def test_injected_interrupt_then_resume_is_bit_identical(
        self, tech018, tmp_path
    ):
        """The kill-and-resume contract: SIGINT semantics mid-campaign, a
        valid JSONL checkpoint on disk, and a resumed run whose results
        equal the uninterrupted run exactly."""
        specs = _specs(tech018, [1, 2, 3, 4, 5])
        clean = [s.peak_voltage for s in simulate_many(specs, engine="scalar")]
        ckpt = tmp_path / "run.jsonl"
        faults.install_faults("interrupt:chunk=1:at=0")
        first = CampaignRunner(_config(checkpoint=ckpt, chunk_size=2))
        with pytest.raises(KeyboardInterrupt):
            first.run_simulate(specs)

        # Chunk 0 was committed before the interrupt; the journal is valid.
        lines = ckpt.read_text().splitlines()
        assert [json.loads(line)["chunk"] for line in lines[1:]] == [0]

        # Same process, same armed plan (at=0 was consumed): resuming must
        # finish chunks 1-2 and splice the exact uninterrupted results.
        second = CampaignRunner(
            _config(checkpoint=ckpt, chunk_size=2, resume=True)
        )
        resumed = second.run_simulate(specs)
        faults.clear_faults()
        assert [s.peak_voltage for s in resumed] == clean

    def test_determinism_under_compound_failure(self, tech018, tmp_path):
        """The acceptance gate: one worker crash, one injected Newton
        divergence and one mid-run interrupt+resume — and the final
        SweepResult arrays are bit-identical to a clean serial run, with
        telemetry reporting the exact injected counts."""
        base = _specs(tech018, [1])[0]
        values = [1, 2, 3, 4, 5, 6]
        apply = lambda spec, n: dataclasses.replace(spec, n_drivers=int(n))
        estimators = {"linear": lambda spec: 0.02 * spec.n_drivers}
        clean = sweep("n_drivers", base, values, apply, estimators,
                      max_workers=1, engine="scalar")

        ckpt = tmp_path / "sweep.jsonl"
        faults.install_faults(
            "worker:chunk=0:task=0,"       # breaks the pool twice -> serial
            "newton:chunk=1:phase=bulk,"   # exhausts chunk 1's bulk budget
            "interrupt:chunk=2:at=0"       # SIGINT before chunk 2 runs
        )
        simulate_ssn_cache_clear()
        first = CampaignRunner(CampaignConfig(
            checkpoint=ckpt, chunk_size=2, max_retries=2, backoff_base=0.0,
            max_workers=2, engine="scalar",
        ))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with pytest.raises(KeyboardInterrupt):
                sweep("n_drivers", base, values, apply, estimators,
                      campaign=first)

        second = CampaignRunner(CampaignConfig(
            checkpoint=ckpt, chunk_size=2, max_retries=2, backoff_base=0.0,
            max_workers=2, engine="scalar", resume=True,
        ))
        result = sweep("n_drivers", base, values, apply, estimators,
                       campaign=second)
        faults.clear_faults()

        assert result.values() == clean.values()
        assert result.simulated_peaks() == clean.simulated_peaks()
        assert result.estimate_series("linear") == \
            clean.estimate_series("linear")
        assert np.array_equal(
            np.asarray(result.simulated_peaks()),
            np.asarray(clean.simulated_peaks()),
        )

        # Exact injected counts, reconstructed across the interrupt via the
        # journal's per-chunk campaign counters.
        tel = second.telemetry
        assert tel.retries == 2          # chunk 1's two bulk re-attempts
        assert tel.degradations == 1     # chunk 0's pool -> serial fallback
        assert tel.chunks_failed == 1    # chunk 1 entered instance recovery
        assert tel.unrecovered_failures == 0
