"""Unit tests for the complementary (PMOS) device mapping."""

import numpy as np
import pytest

from repro.devices import BsimLikeMosfet, BsimLikeParameters, ComplementaryMosfet
from repro.process import TSMC018


@pytest.fixture
def pmos():
    return TSMC018.pmos_device()


class TestMirrorMapping:
    def test_exact_sign_symmetry(self):
        inner = BsimLikeMosfet(BsimLikeParameters())
        p = ComplementaryMosfet(inner)
        for vgs, vds, vbs in [(-1.2, -1.0, 0.0), (-0.3, -1.8, 0.2), (0.5, 0.4, 0.0)]:
            assert p.ids(vgs, vds, vbs) == pytest.approx(
                -inner.ids(-vgs, -vds, -vbs), rel=1e-12
            )

    def test_conducting_pullup_sources_current(self, pmos):
        """vgs, vds negative (on): drain current negative = source->drain flow."""
        assert pmos.ids(-1.8, -1.8) < 0.0

    def test_off_when_gate_high(self, pmos):
        assert abs(pmos.ids(0.0, -1.8)) < 1e-8

    def test_array_evaluation(self, pmos):
        vgs = np.array([-1.8, -0.9, 0.0])
        out = pmos.ids(vgs, -1.8)
        assert out.shape == (3,)
        assert out[0] < out[1] <= out[2] + 1e-9

    def test_scalar_in_scalar_out(self, pmos):
        assert isinstance(pmos.ids(-1.0, -1.0), float)

    def test_partials_finite(self, pmos):
        op = pmos.partials(-1.8, -1.8, 0.0)
        assert np.isfinite([op.ids, op.gm, op.gds, op.gmbs]).all()

    def test_params_exposes_inner(self, pmos):
        assert pmos.params.w == TSMC018.reference_width * TSMC018.pmos_width_ratio


class TestTechnologyPmos:
    def test_all_cards_have_pmos(self):
        from repro.process import list_technologies, get_technology

        for name in list_technologies():
            tech = get_technology(name)
            assert tech.pmos is not None
            dev = tech.pmos_device()
            assert dev.ids(-tech.vdd, -tech.vdd) < 0.0

    def test_pullup_strength_scaling(self):
        one = TSMC018.pullup_device(1.0)
        two = TSMC018.pullup_device(2.0)
        assert two.params.w == pytest.approx(2 * one.params.w)

    def test_matched_drive_strength(self):
        """Default pull-up current magnitude within 2x of the pull-down's."""
        n = TSMC018.driver_device()
        p = TSMC018.pullup_device()
        ratio = abs(p.ids(-1.8, -1.8)) / n.ids(1.8, 1.8)
        assert 0.5 < ratio < 2.0

    def test_invalid_widths(self):
        with pytest.raises(ValueError):
            TSMC018.pmos_device(0.0)
        with pytest.raises(ValueError):
            TSMC018.pullup_device(-1.0)
