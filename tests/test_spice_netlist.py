"""Tests for SPICE netlist export/import."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import BsimLikeMosfet
from repro.spice import Circuit, Dc, Pulse, Pwl, Ramp, transient
from repro.spice.netlist import format_value, from_spice, parse_value, to_spice


class TestValueParsing:
    @pytest.mark.parametrize("token,expected", [
        ("1k", 1e3), ("2.2K", 2.2e3), ("10MEG", 10e6), ("5n", 5e-9),
        ("1p", 1e-12), ("3u", 3e-6), ("7m", 7e-3), ("1.5G", 1.5e9),
        ("2f", 2e-15), ("4T", 4e12), ("42", 42.0), ("1e-9", 1e-9),
    ])
    def test_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    @settings(max_examples=50)
    @given(st.floats(min_value=1e-15, max_value=1e12, allow_nan=False))
    def test_format_roundtrip(self, value):
        assert parse_value(format_value(value)) == pytest.approx(value, rel=1e-9)


class TestExport:
    def test_cards_rendered(self):
        c = Circuit("demo")
        c.resistor("R1", "a", "0", 1e3)
        c.capacitor("C1", "a", "0", 1e-12, ic=1.8)
        c.inductor("L1", "a", "b", 5e-9)
        c.vsource("Vin", "b", "0", Ramp(0, 1.8, 0, 0.5e-9))
        text = to_spice(c)
        assert "* demo" in text
        assert "R1 a 0 1000" in text
        assert "IC=1.8" in text
        assert "PWL(" in text
        assert text.strip().endswith(".END")

    def test_mosfet_card_uses_model_name(self):
        c = Circuit()
        c.mosfet("1", "d", "g", "0", "0", BsimLikeMosfet())
        assert "M1 d g 0 0 bsim-like" in to_spice(c)

    def test_mutual_card(self):
        c = Circuit()
        c.inductor("a", "x", "0", 1e-9)
        c.inductor("b", "x", "0", 1e-9)
        c.mutual("1", "a", "b", 0.4)
        assert "K1 La Lb 0.4" in to_spice(c)


class TestImport:
    def test_basic_deck(self):
        deck = """simple divider
V1 in 0 DC 10
R1 in mid 3k
R2 mid 0 1k
.END
"""
        circuit = from_spice(deck)
        from repro.spice import dc_operating_point

        sol = dc_operating_point(circuit)
        assert sol.voltage("mid") == pytest.approx(2.5)

    def test_comments_and_blank_lines_skipped(self):
        deck = "* a comment\n\nR1 a 0 1k\n* another\nC1 a 0 1p IC=1\n"
        circuit = from_spice(deck)
        assert len(circuit.elements) == 2

    def test_pulse_and_pwl_sources(self):
        deck = (
            "V1 a 0 PULSE(0 1 1n 0.1n 0.1n 2n)\n"
            "V2 b 0 PWL(0 0 1n 1.8)\n"
        )
        circuit = from_spice(deck)
        assert isinstance(circuit.element("V1").shape, Pulse)
        assert isinstance(circuit.element("V2").shape, Pwl)
        assert circuit.element("V2").shape(0.5e-9) == pytest.approx(0.9)

    def test_mosfet_requires_registry(self):
        deck = "M1 d g 0 0 bsim-like\n"
        with pytest.raises(KeyError, match="registry"):
            from_spice(deck)
        circuit = from_spice(deck, models={"bsim-like": BsimLikeMosfet()})
        assert circuit.element("M1").model.name == "bsim-like"

    def test_mutual_resolves_forward_references(self):
        deck = "K1 La Lb 0.5\nLa x 0 1n\nLb x 0 1n\n"
        circuit = from_spice(deck)
        assert circuit.element("K1").coupling == pytest.approx(0.5)

    def test_unsupported_card(self):
        with pytest.raises(ValueError, match="unsupported"):
            from_spice("R1 a 0 1k\nQ1 c b e model\n")

    def test_malformed_source(self):
        with pytest.raises(ValueError):
            from_spice("V1 a 0 DC 1 2\n")


class TestRoundTrip:
    def test_rlc_roundtrip_simulates_identically(self):
        c = Circuit("rlc")
        c.vsource("Vs", "in", "0", Ramp(0, 1, 0, 1e-12))
        c.resistor("R1", "in", "m", 10.0)
        c.inductor("L1", "m", "o", 5e-9)
        c.capacitor("C1", "o", "0", 1e-12, ic=0.0)

        rebuilt = from_spice(to_spice(c))
        a = transient(c, 2e-9, 1e-12).voltage("o")
        b = transient(rebuilt, 2e-9, 1e-12).voltage("o")
        assert a.max_abs_difference(b) < 1e-9

    def test_driver_bank_roundtrip(self):
        from repro.analysis import DriverBankSpec, build_driver_bank
        from repro.process import TSMC018

        spec = DriverBankSpec(
            technology=TSMC018, n_drivers=4, inductance=5e-9,
            capacitance=1e-12, rise_time=0.5e-9,
        )
        circuit = build_driver_bank(spec)
        text = to_spice(circuit)
        device = circuit.element("M1").model
        rebuilt = from_spice(text, models={device.name: device})
        assert {e.name for e in rebuilt.elements} == {e.name for e in circuit.elements}

    @settings(max_examples=25)
    @given(
        r=st.floats(1.0, 1e6),
        c_val=st.floats(1e-15, 1e-9),
        l_val=st.floats(1e-12, 1e-6),
        v=st.floats(-10, 10),
    )
    def test_value_fidelity_property(self, r, c_val, l_val, v):
        circuit = Circuit()
        circuit.vsource("Vs", "a", "0", Dc(v))
        circuit.resistor("Rr", "a", "b", r)
        circuit.capacitor("Cc", "b", "0", c_val)
        circuit.inductor("Ll", "b", "0", l_val)
        rebuilt = from_spice(to_spice(circuit))
        assert rebuilt.element("Rr").ohms == pytest.approx(r, rel=1e-9)
        assert rebuilt.element("Cc").farads == pytest.approx(c_val, rel=1e-9)
        assert rebuilt.element("Ll").henries == pytest.approx(l_val, rel=1e-9)
        assert rebuilt.element("Vs").shape(0.0) == pytest.approx(v, rel=1e-9, abs=1e-12)
