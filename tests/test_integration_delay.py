"""Integration tests for E16: SSN-induced delay degradation."""

import numpy as np
import pytest

from repro.experiments import delay_degradation
from repro.experiments.delay_degradation import fall_delay
from repro.spice import Waveform


@pytest.fixture(scope="module")
def result():
    return delay_degradation.run(driver_counts=(1, 4, 8))


class TestFallDelay:
    def test_linear_fall_crossing(self):
        t = np.linspace(0, 2e-9, 400)
        vdd = 1.8
        out = Waveform(t, np.clip(vdd * (1 - t / 1e-9), 0, vdd))
        assert fall_delay(out, vdd) == pytest.approx(0.5e-9, rel=1e-3)

    def test_custom_reference(self):
        t = np.linspace(0, 2e-9, 400)
        out = Waveform(t, np.clip(1.8 * (1 - t / 1e-9), 0, 1.8))
        assert fall_delay(out, 1.8, reference=0.1) == pytest.approx(0.9e-9, rel=1e-2)


class TestDelayDegradation:
    def test_baseline_is_lone_driver(self, result):
        assert result.points[0].n_drivers == 1
        assert result.points[0].pushout == 0.0

    def test_pushout_monotone_in_n(self, result):
        pushouts = [p.pushout for p in result.points]
        assert all(b > a for a, b in zip(pushouts, pushouts[1:]))

    def test_pushout_significant_at_n8(self, result):
        """The intro's claim is not cosmetic: tens of ps on a ~2 ns edge."""
        n8 = next(p for p in result.points if p.n_drivers == 8)
        assert n8.pushout > 50e-12

    def test_estimate_right_order_of_magnitude(self, result):
        for point in result.points[1:]:
            assert 0.1 * point.pushout < point.predicted_pushout < 1.2 * point.pushout

    def test_estimate_undershoots_with_documented_sign(self, result):
        """The ASDM-window estimate is low (see the module docstring)."""
        large_n = result.points[-1]
        assert large_n.predicted_pushout < large_n.pushout

    def test_requires_baseline_first(self):
        with pytest.raises(ValueError, match="baseline"):
            delay_degradation.run(driver_counts=(4, 8))

    def test_report_renders(self, result):
        text = result.format_report()
        assert "push-out" in text.lower()
