"""The HTTP serving layer: hit / miss / dedup semantics end to end.

Each test runs a real :class:`~repro.service.server.SsnService` on an
ephemeral port inside the test's own event loop and talks to it over a
raw socket (:func:`repro.service.client.arequest`), so the hand-rolled
HTTP plumbing is exercised along with the serving logic.  The headline
guarantees: a repeat query is answered from the persistent store with
*zero* Newton solves and a bit-identical payload, identical concurrent
requests collapse onto exactly one computation, and a corrupt or
stale-schema record costs one recompute, never a crash or a wrong answer.
"""

import asyncio
import contextlib
import json

import pytest

from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.simulate import simulate_ssn, simulate_ssn_cache_clear
from repro.observability import metrics as obs_metrics
from repro.process import get_technology
from repro.service import RECORD_SCHEMA_VERSION, ResultStore, SsnService, arequest
from repro.spice.telemetry import (
    disable_session_telemetry,
    enable_session_telemetry,
)
from repro.testing import faults
from repro.testing.faults import FaultRule

#: One small, fast request body shared by most tests.
PARAMS = {"n_drivers": 2, "inductance": 1e-9, "rise_time": 0.5e-9,
          "tech": "tsmc018"}


@pytest.fixture(autouse=True)
def registry():
    """Fresh per-test process state: metrics, memo, faults, telemetry."""
    simulate_ssn_cache_clear()
    faults.clear_faults()
    disable_session_telemetry()
    registry = obs_metrics.enable_metrics()
    yield registry
    simulate_ssn_cache_clear()
    faults.clear_faults()
    disable_session_telemetry()
    obs_metrics.disable_metrics()


@contextlib.asynccontextmanager
async def service_on(tmp_path, **kwargs):
    service = SsnService(store_root=tmp_path / "store", port=0, **kwargs)
    await service.start()
    try:
        yield service
    finally:
        await service.close()


async def post(service, path, payload):
    return await arequest("127.0.0.1", service.port, "POST", path, payload)


def spec_of(params):
    return DriverBankSpec(
        technology=get_technology(params.get("tech", "tsmc018")),
        n_drivers=params["n_drivers"],
        inductance=params["inductance"],
        rise_time=params["rise_time"],
    )


class TestSimulate:
    def test_miss_then_hit_is_bit_identical_with_zero_solves(self, tmp_path):
        async def scenario():
            async with service_on(tmp_path) as service:
                status, first = await post(service, "/simulate", PARAMS)
            assert status == 200 and first["outcome"] == "miss"
            # A "new process": cold in-process memo, session telemetry
            # armed, same persistent store.  The repeat answer must come
            # from the store alone.
            simulate_ssn_cache_clear()
            session = enable_session_telemetry()
            async with service_on(tmp_path) as service:
                status, again = await post(service, "/simulate", PARAMS)
            assert status == 200 and again["outcome"] == "hit"
            assert session.newton_solves == 0
            assert again["key"] == first["key"]
            assert again["peak_voltage"] == first["peak_voltage"]
            assert again["peak_time"] == first["peak_time"]
            assert again["waveforms"] == first["waveforms"]
            return first

        first = asyncio.run(scenario())
        # The served numbers are the golden simulation's, exactly: JSON
        # floats render via repr, the shortest exact round trip.
        sim = simulate_ssn(spec_of(PARAMS))
        assert first["peak_voltage"] == sim.peak_voltage
        assert first["waveforms"]["ssn"]["y"] == sim.ssn.y.tolist()
        assert first["waveforms"]["ssn"]["t"] == sim.ssn.t.tolist()

    def test_waveforms_are_optional(self, tmp_path):
        async def scenario():
            async with service_on(tmp_path) as service:
                params = dict(PARAMS, include_waveforms=False)
                status, payload = await post(service, "/simulate", params)
            assert status == 200
            assert "waveforms" not in payload

        asyncio.run(scenario())

    def test_explicit_options_key_separately(self, tmp_path):
        async def scenario():
            async with service_on(tmp_path) as service:
                _, base = await post(service, "/simulate", PARAMS)
                params = dict(PARAMS, options={"abstol": 1e-10})
                _, tighter = await post(service, "/simulate", params)
            assert base["key"] != tighter["key"]
            assert tighter["outcome"] == "miss"

        asyncio.run(scenario())


class TestDedup:
    def test_concurrent_identical_requests_share_one_compute(
            self, tmp_path, registry):
        async def scenario():
            async with service_on(tmp_path) as service:
                # Stall the (single) compute at the campaign's task probe
                # long enough for the followers to arrive and observe the
                # in-flight leader.
                faults.install_faults([FaultRule(kind="stall", seconds=0.5)])
                try:
                    return await asyncio.gather(*(
                        post(service, "/simulate", PARAMS) for _ in range(3)
                    ))
                finally:
                    faults.clear_faults()

        answered = asyncio.run(scenario())
        assert [status for status, _ in answered] == [200, 200, 200]
        outcomes = sorted(payload["outcome"] for _, payload in answered)
        assert outcomes == ["dedup", "dedup", "miss"]
        payloads = [payload for _, payload in answered]
        assert len({p["key"] for p in payloads}) == 1
        assert len({p["peak_voltage"] for p in payloads}) == 1
        computes = registry.get("repro_service_computes_total")
        assert computes is not None and computes.value == 1
        served = registry.get("repro_service_requests_total",
                              {"endpoint": "simulate", "outcome": "dedup"})
        assert served is not None and served.value == 2


class TestStoreRecovery:
    def _store(self, tmp_path):
        return ResultStore(tmp_path / "store")

    def test_corrupt_record_is_quarantined_and_recomputed(
            self, tmp_path, registry):
        async def scenario():
            async with service_on(tmp_path) as service:
                _, first = await post(service, "/simulate", PARAMS)
                store = self._store(tmp_path)
                store.path_for(first["key"]).write_text("{torn")
                simulate_ssn_cache_clear()
                _, again = await post(service, "/simulate", PARAMS)
            return first, again, store

        first, again, store = asyncio.run(scenario())
        assert again["outcome"] == "miss"
        assert again["peak_voltage"] == first["peak_voltage"]
        assert store.quarantined()
        # The recompute re-published a valid record under the same key.
        assert store.load(first["key"]) is not None

    def test_schema_bump_forces_recompute(self, tmp_path):
        async def scenario():
            async with service_on(tmp_path) as service:
                _, first = await post(service, "/simulate", PARAMS)
                store = self._store(tmp_path)
                path = store.path_for(first["key"])
                record = json.loads(path.read_text())
                record["schema"] = RECORD_SCHEMA_VERSION + 1
                path.write_text(json.dumps(record))
                simulate_ssn_cache_clear()
                _, again = await post(service, "/simulate", PARAMS)
            return first, again

        first, again = asyncio.run(scenario())
        assert again["outcome"] == "miss"
        assert again["waveforms"] == first["waveforms"]


class TestSweepAndMonteCarlo:
    def test_sweep_repeat_is_all_hits(self, tmp_path):
        body = {"knob": "n_drivers", "values": [1, 2],
                "inductance": 1e-9, "rise_time": 0.5e-9}

        async def scenario():
            async with service_on(tmp_path) as service:
                _, first = await post(service, "/sweep", body)
                simulate_ssn_cache_clear()
                _, again = await post(service, "/sweep", body)
            return first, again

        first, again = asyncio.run(scenario())
        assert [p["outcome"] for p in first["points"]] == ["miss", "miss"]
        assert [p["outcome"] for p in again["points"]] == ["hit", "hit"]
        assert [p["peak_voltage"] for p in again["points"]] == [
            p["peak_voltage"] for p in first["points"]]

    def test_sweep_points_share_the_simulate_namespace(self, tmp_path):
        """A /simulate answer pre-populates the same spec's sweep point."""
        async def scenario():
            async with service_on(tmp_path) as service:
                _, single = await post(service, "/simulate",
                                       dict(PARAMS, n_drivers=1))
                simulate_ssn_cache_clear()
                body = {"knob": "n_drivers", "values": [1],
                        "inductance": 1e-9, "rise_time": 0.5e-9}
                _, swept = await post(service, "/sweep", body)
            return single, swept

        single, swept = asyncio.run(scenario())
        point = swept["points"][0]
        assert point["key"] == single["key"]
        assert point["outcome"] == "hit"

    def test_montecarlo_repeat_hit_is_bit_identical(self, tmp_path):
        body = {"n_drivers": 1, "inductance": 1e-9, "rise_time": 0.5e-9,
                "trials": 6, "seed": 3}

        async def scenario():
            async with service_on(tmp_path) as service:
                _, first = await post(service, "/montecarlo", body)
                simulate_ssn_cache_clear()
                session = enable_session_telemetry()
                _, again = await post(service, "/montecarlo", body)
            return first, again, session

        first, again, session = asyncio.run(scenario())
        assert first["outcome"] == "miss" and again["outcome"] == "hit"
        assert session.newton_solves == 0
        assert again["samples"] == first["samples"]
        assert again["mean"] == first["mean"]
        assert again["p95"] == first["p95"]


class TestHttpSurface:
    async def _get(self, service, path):
        return await arequest("127.0.0.1", service.port, "GET", path)

    def test_health_metrics_and_errors(self, tmp_path):
        async def scenario():
            async with service_on(tmp_path) as service:
                results = {}
                results["health"] = await self._get(service, "/healthz")
                _, _ = await post(service, "/simulate", PARAMS)
                results["metrics"] = await self._get(service, "/metrics")
                results["missing"] = await self._get(service, "/nope")
                results["wrong_method"] = await self._get(service, "/simulate")
                results["unknown_param"] = await post(
                    service, "/simulate", dict(PARAMS, bogus=1))
                results["no_drivers"] = await post(
                    service, "/simulate", {"inductance": 1e-9})
                results["bad_knob"] = await post(
                    service, "/sweep", {"knob": "vdd", "values": [1]})
                status, _ = await arequest(
                    "127.0.0.1", service.port, "POST", "/simulate",
                    payload=None)
                results["empty_body"] = (status, None)
            return results

        results = asyncio.run(scenario())
        status, health = results["health"]
        assert status == 200 and health["status"] == "ok"
        status, text = results["metrics"]
        assert status == 200
        assert "repro_service_requests_total" in text
        assert "repro_store_writes_total" in text
        assert results["missing"][0] == 404
        assert results["wrong_method"][0] == 405
        assert results["unknown_param"][0] == 400
        assert "bogus" in results["unknown_param"][1]["error"]
        assert results["no_drivers"][0] == 400
        assert results["bad_knob"][0] == 400
        # An empty POST body is "{}", which fails spec validation, not parsing.
        assert results["empty_body"][0] == 400

    def test_malformed_json_is_a_400(self, tmp_path):
        async def scenario():
            async with service_on(tmp_path) as service:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port)
                body = b"{not json"
                writer.write(
                    b"POST /simulate HTTP/1.1\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\n"
                    b"Connection: close\r\n\r\n%s" % (len(body), body))
                await writer.drain()
                raw = await reader.read()
                writer.close()
            return raw

        raw = asyncio.run(scenario())
        assert raw.startswith(b"HTTP/1.1 400")


class TestSurrogateFirst:
    """The serving tier's new first layer: fitted models answer in-region."""

    #: In-region for the box below; distinct from PARAMS so the two
    #: namespaces never collide in the store.
    IN_REGION = {"n_drivers": 4, "inductance": 3e-9, "rise_time": 0.5e-9,
                 "tech": "tsmc018"}

    @pytest.fixture(scope="class")
    def model(self):
        from repro.surrogate import fit_surrogate

        return fit_surrogate(
            "tsmc018", n_drivers=(2, 6), inductance=(2e-9, 5e-9),
            rise_time=(0.4e-9, 0.7e-9))

    def warmed_store(self, tmp_path, model):
        from repro.service import surrogate_key

        store = ResultStore(tmp_path / "store")
        store.put_surrogate(
            surrogate_key(model.technology, model.topology,
                          model.operating_region), model)
        return store

    def test_in_region_is_answered_surrogate_then_refined(
            self, tmp_path, model, registry):
        async def scenario():
            self.warmed_store(tmp_path, model)
            async with service_on(tmp_path) as service:
                status, first = await post(service, "/simulate", self.IN_REGION)
                # Background refinement publishes the golden record, after
                # which the same request is an exact store hit.
                await service.drain_background()
                status2, refined = await post(service, "/simulate", self.IN_REGION)
            return status, first, status2, refined

        status, first, status2, refined = asyncio.run(scenario())
        assert status == 200 and first["outcome"] == "surrogate"
        assert first["engine"] == "surrogate"
        assert first["surrogate"]["technology"] == "tsmc018"
        assert first["surrogate"]["operating_region"] == "first_order"
        assert first["telemetry"]["surrogate_hits"] == 1
        golden = simulate_ssn(spec_of(self.IN_REGION))
        bound = first["surrogate"]["error_bound_percent"] / 100.0
        assert abs(first["peak_voltage"] - golden.peak_voltage) <= (
            bound * golden.peak_voltage)
        assert status2 == 200 and refined["outcome"] == "hit"
        assert refined["peak_voltage"] == golden.peak_voltage
        assert refined["key"] == first["key"]

    def test_out_of_region_takes_the_full_path(self, tmp_path, model, registry):
        async def scenario():
            self.warmed_store(tmp_path, model)
            async with service_on(tmp_path) as service:
                params = dict(self.IN_REGION, n_drivers=40)
                _, payload = await post(service, "/simulate", params)
            return payload

        payload = asyncio.run(scenario())
        assert payload["outcome"] == "miss"  # computed, not surrogate

    def test_per_request_and_per_server_opt_out(self, tmp_path, model, registry):
        async def scenario():
            self.warmed_store(tmp_path, model)
            async with service_on(tmp_path) as service:
                _, per_request = await post(
                    service, "/simulate", dict(self.IN_REGION, surrogate=False))
            async with service_on(tmp_path, surrogate=False) as service:
                _, per_server = await post(service, "/simulate", self.IN_REGION)
            return per_request, per_server

        per_request, per_server = asyncio.run(scenario())
        assert per_request["outcome"] in ("miss", "hit")
        assert per_server["outcome"] in ("miss", "hit")

    def test_surrogate_metrics_are_exported(self, tmp_path, model, registry):
        async def scenario():
            self.warmed_store(tmp_path, model)
            async with service_on(tmp_path) as service:
                await post(service, "/simulate", self.IN_REGION)
                return await arequest(
                    "127.0.0.1", service.port, "GET", "/metrics")

        status, text = asyncio.run(scenario())
        assert status == 200
        assert "repro_surrogate_hits_total" in text
        assert "repro_surrogate_warmed_total" in text
