"""Unit tests for the circuit-oriented figure Z (paper Eqns 9-10)."""

import pytest

from repro.core import (
    AsdmParameters,
    InductiveSsnModel,
    circuit_figure,
    equivalent_driver_count,
    equivalent_inductance,
    equivalent_slope,
    figure_for_noise_budget,
    peak_noise_from_figure,
)


@pytest.fixture
def params():
    return AsdmParameters(k=5.4e-3, v0=0.60, lam=1.04)


class TestFigure:
    def test_product(self):
        assert circuit_figure(8, 5e-9, 3.6e9) == pytest.approx(8 * 5e-9 * 3.6e9)

    def test_eqn10_matches_eqn7(self, params):
        """Vmax via Z must equal the InductiveSsnModel peak exactly."""
        model = InductiveSsnModel(params, 8, 5e-9, 1.8, 0.5e-9)
        z = circuit_figure(8, 5e-9, model.slope)
        assert peak_noise_from_figure(z, params, 1.8) == pytest.approx(
            model.peak_voltage(), rel=1e-12
        )

    def test_monotone_in_z(self, params):
        v = [peak_noise_from_figure(z, params, 1.8) for z in (1e-2, 1e-1, 1.0, 10.0)]
        assert all(b > a for a, b in zip(v, v[1:]))

    def test_small_z_linear_limit(self, params):
        """As Z -> 0 the exponential vanishes and Vmax -> K*Z."""
        z = 1e-6
        assert peak_noise_from_figure(z, params, 1.8) == pytest.approx(params.k * z, rel=1e-9)

    def test_invalid_inputs(self, params):
        with pytest.raises(ValueError):
            peak_noise_from_figure(0.0, params, 1.8)
        with pytest.raises(ValueError):
            peak_noise_from_figure(1.0, params, params.v0)
        with pytest.raises(ValueError):
            circuit_figure(0, 5e-9, 1e9)


class TestInversion:
    def test_budget_roundtrip(self, params):
        z = figure_for_noise_budget(0.3, params, 1.8)
        assert peak_noise_from_figure(z, params, 1.8) == pytest.approx(0.3, rel=1e-9)

    def test_budget_above_supremum_rejected(self, params):
        supremum = (1.8 - params.v0) / params.lam
        with pytest.raises(ValueError, match="saturates"):
            figure_for_noise_budget(supremum, params, 1.8)

    def test_budget_nonpositive_rejected(self, params):
        with pytest.raises(ValueError):
            figure_for_noise_budget(0.0, params, 1.8)

    def test_tight_budget_small_figure(self, params):
        z_tight = figure_for_noise_budget(0.05, params, 1.8)
        z_loose = figure_for_noise_budget(0.5, params, 1.8)
        assert z_tight < z_loose


class TestEquivalences:
    def test_three_way_consistency(self):
        z = circuit_figure(8, 5e-9, 3.6e9)
        assert equivalent_driver_count(z, 5e-9, 3.6e9) == pytest.approx(8.0)
        assert equivalent_inductance(z, 8, 3.6e9) == pytest.approx(5e-9)
        assert equivalent_slope(z, 8, 5e-9) == pytest.approx(3.6e9)

    def test_equivalence_of_countermeasures(self, params):
        """Halving N, L or sr are interchangeable (the design implication)."""
        base = circuit_figure(8, 5e-9, 3.6e9)
        half_n = circuit_figure(4, 5e-9, 3.6e9)
        half_l = circuit_figure(8, 2.5e-9, 3.6e9)
        half_sr = circuit_figure(8, 5e-9, 1.8e9)
        assert half_n == pytest.approx(half_l) == pytest.approx(half_sr)
        assert peak_noise_from_figure(half_n, params, 1.8) < peak_noise_from_figure(
            base, params, 1.8
        )

    def test_invalid_equivalents(self):
        for fn in (equivalent_driver_count, equivalent_inductance, equivalent_slope):
            with pytest.raises(ValueError):
                fn(0.0, 1.0, 1.0)
