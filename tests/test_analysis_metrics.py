"""Unit tests for error metrics and waveform comparison."""

import warnings

import numpy as np
import pytest

from repro.analysis import (
    ErrorSummary,
    batch_peaks,
    batch_settling_times,
    compare_waveforms,
    percent_error,
    relative_error,
    settling_time,
)
from repro.spice import Waveform


class TestScalarErrors:
    def test_relative_error_signed(self):
        assert relative_error(1.1, 1.0) == pytest.approx(0.1)
        assert relative_error(0.9, 1.0) == pytest.approx(-0.1)

    def test_percent_error(self):
        assert percent_error(1.05, 1.0) == pytest.approx(5.0)

    def test_zero_reference_conventions(self):
        # 0/0: the estimate is exactly right -> zero error, not an exception.
        assert relative_error(0.0, 0.0) == 0.0
        assert percent_error(0.0, 0.0) == 0.0
        # x/0: unbounded relative error -> signed infinity, not an exception.
        assert relative_error(1.0, 0.0) == np.inf
        assert relative_error(-2.5, 0.0) == -np.inf
        assert percent_error(0.3, 0.0) == np.inf


class TestErrorSummary:
    def test_from_pairs(self):
        s = ErrorSummary.from_pairs([1.1, 0.9, 1.0], [1.0, 1.0, 1.0])
        assert s.mean_abs_percent == pytest.approx(20.0 / 3)
        assert s.max_abs_percent == pytest.approx(10.0)
        assert s.bias_percent == pytest.approx(0.0, abs=1e-9)
        assert s.rms_percent == pytest.approx(np.sqrt(200.0 / 3))

    def test_bias_sign(self):
        s = ErrorSummary.from_pairs([1.1, 1.2], [1.0, 1.0])
        assert s.bias_percent > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorSummary.from_pairs([], [])

    def test_mismatched_rejected(self):
        with pytest.raises(ValueError):
            ErrorSummary.from_pairs([1.0], [1.0, 2.0])

    def test_zero_references_skipped_not_propagated(self):
        # The degenerate pair must not poison the means with inf.
        s = ErrorSummary.from_pairs([1.1, 0.5, 1.0], [1.0, 0.0, 1.0])
        assert np.isfinite(s.mean_abs_percent)
        assert s.mean_abs_percent == pytest.approx(5.0)
        assert s.max_abs_percent == pytest.approx(10.0)
        assert s.n_points == 2
        assert s.n_skipped == 1

    def test_all_zero_references_rejected(self):
        with pytest.raises(ValueError):
            ErrorSummary.from_pairs([1.0], [0.0])


class TestWaveformComparison:
    def test_identical_waveforms(self):
        t = np.linspace(0, 1, 50)
        w = Waveform(t, np.sin(t))
        cmp = compare_waveforms(w, w)
        assert cmp.max_abs_error == 0.0
        assert cmp.rms_error == 0.0

    def test_constant_offset(self):
        t = np.linspace(0, 1, 50)
        golden = Waveform(t, np.ones(50))
        model = Waveform(t, np.ones(50) * 1.1)
        cmp = compare_waveforms(model, golden)
        assert cmp.max_abs_error == pytest.approx(0.1)
        assert cmp.normalized_max_error == pytest.approx(0.1)

    def test_nan_samples_ignored(self):
        t = np.linspace(0, 1, 50)
        y = np.ones(50)
        y[30:] = np.nan  # model validity window ends
        golden = Waveform(t, np.ones(50))
        cmp = compare_waveforms(Waveform(t, y), golden)
        assert cmp.max_abs_error == 0.0

    def test_all_nan_window_yields_clean_empty_result(self):
        # An all-NaN validity window is a legitimate degenerate query: the
        # result is flagged empty, with no numpy RuntimeWarning emitted.
        t = np.linspace(0, 1, 10)
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            cmp = compare_waveforms(
                Waveform(t, np.full(10, np.nan)), Waveform(t, np.ones(10))
            )
        assert cmp.is_empty
        assert cmp.n_valid == 0
        assert np.isnan(cmp.max_abs_error)
        assert np.isnan(cmp.rms_error)
        assert np.isnan(cmp.normalized_max_error)

    def test_all_nan_model_window_from_inductive_model(self, asdm018, tech018):
        # Satellite regression: an InductiveSsnModel queried entirely after
        # the ramp produces an all-NaN window; comparing it against a golden
        # waveform must be clean under -W error::RuntimeWarning.
        from repro.core.ssn_inductive import InductiveSsnModel

        model = InductiveSsnModel(asdm018, n_drivers=4, inductance=5e-9,
                                  vdd=tech018.vdd, rise_time=0.5e-9)
        t = np.linspace(2.0 * model.rise_time, 4.0 * model.rise_time, 64)
        model_wave = Waveform(t, model.voltage(t))
        assert np.all(np.isnan(model_wave.y))
        golden = Waveform(t, np.full(64, 0.25))
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            cmp = compare_waveforms(model_wave, golden)
        assert cmp.is_empty

    def test_zero_golden_rejected(self):
        t = np.linspace(0, 1, 10)
        with pytest.raises(ValueError):
            compare_waveforms(Waveform(t, np.ones(10)), Waveform(t, np.zeros(10)))


class TestBatchedWaveformMetrics:
    """The batch-axis metrics must pin the scalar definitions exactly."""

    @pytest.fixture
    def ensemble(self):
        rng = np.random.default_rng(42)
        t = np.sort(rng.uniform(0.0, 1.0, size=257))
        t[0], t[-1] = 0.0, 1.0
        # Damped-ring-like waveforms with random amplitude/phase; a few
        # rows made constant or monotone to hit the degenerate branches.
        y = np.array([
            a * np.exp(-3.0 * t) * np.sin(2 * np.pi * f * t + p)
            for a, f, p in zip(rng.uniform(0.1, 2.0, 16),
                               rng.uniform(0.5, 8.0, 16),
                               rng.uniform(0, 2 * np.pi, 16))
        ])
        y[0] = 0.25          # constant: settles immediately, peak at t[0]
        y[1] = np.linspace(-1.0, 1.0, len(t))  # monotone: peak at the end
        return t, y

    def test_batch_peaks_equal_scalar_peaks(self, ensemble):
        t, y = ensemble
        pt, pv = batch_peaks(t, y)
        for i in range(len(y)):
            st, sv = Waveform(t, y[i]).peak()
            assert pt[i] == st
            assert pv[i] == sv

    def test_batch_peaks_per_row_time_grids(self, ensemble):
        t, y = ensemble
        grids = np.stack([t + i for i in range(len(y))])
        pt, _ = batch_peaks(grids, y)
        base_pt, _ = batch_peaks(t, y)
        assert np.array_equal(pt, base_pt + np.arange(len(y)))

    @pytest.mark.parametrize("band", [1e-3, 0.05, 0.5])
    def test_batch_settling_equal_scalar_settling(self, ensemble, band):
        t, y = ensemble
        ts = batch_settling_times(t, y, band)
        for i in range(len(y)):
            assert ts[i] == settling_time(Waveform(t, y[i]), band)

    def test_settled_everywhere_reports_start(self):
        t = np.linspace(0.0, 1.0, 32)
        assert settling_time(Waveform(t, np.full(32, 0.7)), 1e-6) == 0.0
        ts = batch_settling_times(t, np.full((3, 32), 0.7), 1e-6)
        assert np.array_equal(ts, np.zeros(3))

    def test_never_settles_reports_last_sample(self):
        t = np.linspace(0.0, 1.0, 32)
        y = np.linspace(0.0, 5.0, 32)
        assert settling_time(Waveform(t, y), 1e-3) == 1.0
        assert batch_settling_times(t, y[None, :], 1e-3)[0] == 1.0

    def test_bad_inputs_rejected(self):
        t = np.linspace(0.0, 1.0, 8)
        y = np.zeros((2, 8))
        with pytest.raises(ValueError):
            batch_settling_times(t, y, 0.0)
        with pytest.raises(ValueError):
            batch_peaks(t, np.zeros(8))
        with pytest.raises(ValueError):
            settling_time(Waveform(t, np.zeros(8)), -1.0)
