"""Integration tests for the extension experiments (E10-E12), reduced size."""

import pytest

from repro.experiments import mutual_coupling, power_rail, skew


@pytest.fixture(scope="module")
def power_rail_result():
    return power_rail.run(driver_counts=(2, 8))


@pytest.fixture(scope="module")
def coupling_result():
    return mutual_coupling.run(couplings=(0.0, 0.5))


@pytest.fixture(scope="module")
def skew_result():
    return skew.run(n_total=8, budget=0.45)


class TestPowerRail:
    def test_duality_model_accurate(self, power_rail_result):
        """The paper's 'analyzed similarly' holds to a few percent."""
        assert power_rail_result.max_droop_error() < 7.0

    def test_crowbar_negligible(self, power_rail_result):
        """The pull-down-only idealization costs well under 1%."""
        assert power_rail_result.max_crowbar_effect() < 0.5

    def test_pmos_parameters_physical(self, power_rail_result):
        p = power_rail_result.pmos_params
        assert p.lam > 1.0
        assert p.v0 > 0.4

    def test_report_renders(self, power_rail_result):
        text = power_rail_result.format_report()
        assert "duality" in text
        assert "Crowbar" in text


class TestMutualCoupling:
    def test_coupling_raises_noise(self, coupling_result):
        peaks = [p.simulated_peak for p in coupling_result.points]
        assert peaks[1] > 1.1 * peaks[0]

    def test_naive_model_fails_with_coupling(self, coupling_result):
        coupled = coupling_result.points[1]
        assert coupled.naive_percent_error < -10.0

    def test_corrected_model_recovers(self, coupling_result):
        for point in coupling_result.points:
            assert abs(point.corrected_percent_error) < 5.0

    def test_report_renders(self, coupling_result):
        assert "Mutual coupling" in coupling_result.format_report()


class TestSkewSchedule:
    def test_simulated_peak_near_plan(self, skew_result):
        assert skew_result.simulated_skewed_peak == pytest.approx(
            skew_result.plan.peak_noise, rel=0.08
        )

    def test_budget_respected_in_simulation(self, skew_result):
        assert skew_result.simulated_skewed_peak <= skew_result.budget * 1.05

    def test_simultaneous_bus_violates(self, skew_result):
        assert skew_result.simulated_simultaneous_peak > skew_result.budget

    def test_noise_reduction_positive(self, skew_result):
        assert skew_result.noise_reduction_percent > 10.0

    def test_report_renders(self, skew_result):
        assert "Skewed-bus" in skew_result.format_report()
