"""Smoke tests: every example script must run end to end.

The slow chain-simulation example is exercised separately (it shares its
code path with experiment E13, which the integration tests already cover),
so this file runs the fast ones in-process via runpy.
"""

import pathlib
import runpy

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "io_budget_planning.py",
    "package_selection.py",
    "process_migration.py",
    "variation_guardband.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_quickstart_mentions_key_quantities(capsys):
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "ASDM fit" in out
    assert "peak SSN" in out
    assert "golden simulation" in out


def test_examples_directory_complete():
    """At least the documented set of runnable examples exists."""
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert set(FAST_EXAMPLES) <= names
    assert "realistic_edges.py" in names
