"""Unit and stitching tests for the durable event journal.

Covers the journal itself (schema-stamped events, the bounded ring,
append durability under the ``crash-write`` fault probe, size-triggered
atomic rotation, the journal-file readers behind ``repro events``) and
the cross-process guarantee: pool workers journal to memory only, their
events ride back with the results and fold into the parent's journal
exactly once — including when a broken pool is respawned and the map
finally degrades to serial.
"""

import json

import pytest

from repro.analysis.parallel import parallel_map_traced
from repro.observability import events as obs_events
from repro.observability import metrics as obs_metrics
from repro.observability import trace
from repro.observability.events import (
    EVENT_SCHEMA_VERSION,
    EventJournal,
    format_event,
    read_journal,
    summarize_events,
)
from repro.testing import faults
from repro.testing.faults import FaultRule, InjectedCrash


@pytest.fixture(autouse=True)
def _clean_state():
    faults.clear_faults()
    trace.disable_tracing()
    obs_metrics.disable_metrics()
    obs_events.disable_events()
    yield
    faults.clear_faults()
    trace.disable_tracing()
    obs_metrics.disable_metrics()
    obs_events.disable_events()


class TestEventJournal:
    def test_events_are_schema_stamped_and_sequenced(self):
        journal = EventJournal()
        first = journal.emit("chunk_retry", chunk=3, attempt=1)
        second = journal.emit("checkpoint_write")
        assert first["schema"] == EVENT_SCHEMA_VERSION
        assert (first["seq"], second["seq"]) == (1, 2)
        assert first["pid"] == second["pid"]
        assert first["t"] <= second["t"]
        assert first["attributes"] == {"chunk": 3, "attempt": 1}
        assert "attributes" not in second  # empty attrs are omitted
        assert journal.recorded == 2

    def test_span_correlation_id(self):
        trace.enable_tracing()
        journal = EventJournal()
        with trace.span("campaign") as sp:
            inside = journal.emit("campaign_resumed")
        outside = journal.emit("service_ready")
        assert inside["span_id"] == sp.span_id
        assert outside["span_id"] is None

    def test_ring_is_bounded_oldest_dropped(self):
        journal = EventJournal(ring_size=3)
        for i in range(5):
            journal.emit("e", i=i)
        kept = [event["attributes"]["i"] for event in journal.events()]
        assert kept == [2, 3, 4]
        assert journal.recorded == 5
        assert [e["attributes"]["i"] for e in journal.tail(2)] == [3, 4]
        assert journal.tail(0) == []

    def test_ring_size_validated(self):
        with pytest.raises(ValueError, match="ring_size"):
            EventJournal(ring_size=0)

    def test_file_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = EventJournal(path)
        journal.emit("store_quarantined", reason="checksum")
        journal.emit("service_ready", port=8431)
        events = read_journal(path)
        assert [e["name"] for e in events] == ["store_quarantined",
                                               "service_ready"]
        assert events[0]["attributes"]["reason"] == "checksum"
        # Every line is one canonical JSON document.
        lines = path.read_text().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_config_drops_path_for_workers(self, tmp_path):
        journal = EventJournal(tmp_path / "e.jsonl", ring_size=7,
                               max_bytes=1234)
        cfg = journal.config()
        assert cfg == {"ring_size": 7, "max_bytes": 1234}
        worker = EventJournal(**cfg)
        assert worker.path is None  # memory-only: one writer per file

    def test_rotation_bounds_the_segment(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = EventJournal(path, ring_size=4, max_bytes=600)
        for i in range(40):
            journal.emit("e", i=i)
        # The file was rotated down to (at most) the ring's contents
        # whenever it crossed max_bytes, so it stays bounded and its tail
        # is the most recent history.
        events = read_journal(path)
        assert 0 < len(events) <= journal.ring_size + 1
        assert events[-1]["attributes"]["i"] == 39
        assert path.stat().st_size < 600 + 200  # one line of slack

    def test_crash_mid_append_leaves_no_torn_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = EventJournal(path)
        journal.emit("first")
        faults.install_faults([FaultRule(kind="crash-write", phase="events")],
                              mirror_env=False)
        with pytest.raises(InjectedCrash):
            journal.emit("second")
        faults.clear_faults()
        # The probe fires before any bytes are written: the journal still
        # parses line-for-line and holds only the pre-crash event.
        assert [e["name"] for e in read_journal(path)] == ["first"]
        assert path.read_text().endswith("\n")
        journal.emit("third")
        assert [e["name"] for e in read_journal(path)] == ["first", "third"]

    def test_crash_mid_rotation_preserves_old_segment(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = EventJournal(path, ring_size=4, max_bytes=10 ** 9)
        for i in range(6):
            journal.emit("e", i=i)
        before = path.read_text()
        # Force a rotation attempt and crash between its two chunks; the
        # append probe is matching probe 0, the mid-rotation probe is 1.
        journal.max_bytes = 1
        faults.install_faults(
            [FaultRule(kind="crash-write", phase="events", at=1)],
            mirror_env=False)
        with pytest.raises(InjectedCrash):
            journal.emit("trigger")
        faults.clear_faults()
        # atomic_write never replaced the file: old segment + the append
        # that triggered rotation, no partial rewrite.
        trigger_line = json.dumps(journal.events()[-1], sort_keys=True) + "\n"
        assert path.read_text() == before + trigger_line

    def test_events_scope_does_not_catch_other_phases(self, tmp_path):
        faults.install_faults([FaultRule(kind="crash-write", phase="store")],
                              mirror_env=False)
        journal = EventJournal(tmp_path / "e.jsonl")
        journal.emit("unaffected")
        assert len(read_journal(journal.path)) == 1


class TestModuleGlobals:
    def test_disabled_helpers_are_noops(self):
        assert obs_events.emit("anything", k=1) is None
        assert obs_events.snapshot_events() == []
        assert obs_events.adopt_events([{"name": "x"}]) == 0
        assert obs_events.active_journal() is None

    def test_enable_emit_disable(self, tmp_path):
        journal = obs_events.enable_events(tmp_path / "e.jsonl")
        assert obs_events.active_journal() is journal
        event = obs_events.emit("service_ready", port=0)
        assert event is not None and event["name"] == "service_ready"
        assert [e["name"] for e in obs_events.snapshot_events()] == \
            ["service_ready"]
        obs_events.disable_events()
        assert obs_events.emit("after") is None

    def test_adopt_preserves_worker_identity(self):
        obs_events.enable_events()
        payload = [{"schema": EVENT_SCHEMA_VERSION, "seq": 9, "t": 123.0,
                    "pid": 4242, "name": "work_event", "span_id": "ab.cd"}]
        assert obs_events.adopt_events(payload) == 1
        (adopted,) = obs_events.snapshot_events()
        assert (adopted["pid"], adopted["seq"]) == (4242, 9)
        assert adopted["t"] == 123.0  # wall clock: no rebasing needed


class TestJournalFileHelpers:
    def test_read_journal_is_lenient(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"name": "ok", "t": 1.0}\n'
                        "\n"
                        "not json\n"
                        "[1, 2]\n"
                        '{"name": "also ok"}\n')
        assert [e["name"] for e in read_journal(path)] == ["ok", "also ok"]
        assert read_journal(tmp_path / "absent.jsonl") == []

    def test_summarize_counts_by_name(self):
        events = [{"name": "a", "t": 1.0}, {"name": "b", "t": 2.5},
                  {"name": "a", "t": 2.0}]
        text = summarize_events(events)
        assert text.startswith("3 events, 2 kinds, spanning 1.500 s")
        lines = text.splitlines()
        assert any(line.split() == ["a", "2"] for line in lines)
        assert summarize_events([]) == "no events"

    def test_format_event(self):
        line = format_event({"t": 0.0, "pid": 7, "seq": 3,
                             "name": "chunk_retry",
                             "attributes": {"chunk": 1, "attempt": 2}})
        assert line.endswith("[7#3] chunk_retry attempt=2 chunk=1")
        assert format_event({"name": "bare"}).startswith("--:--:-- [?#?] bare")


def _emitting_double(x):
    """Module-level (picklable) worker: one journal event per task."""
    obs_events.emit("work_event", index=x)
    return 2 * x


class TestPoolStitching:
    def test_two_workers_every_event_exactly_once(self, tmp_path):
        path = tmp_path / "events.jsonl"
        journal = obs_events.enable_events(path)
        results, used_pool = parallel_map_traced(
            _emitting_double, range(4), max_workers=2
        )
        assert results == [0, 2, 4, 6]
        assert used_pool is True

        work = [e for e in journal.events() if e["name"] == "work_event"]
        assert sorted(e["attributes"]["index"] for e in work) == [0, 1, 2, 3]
        # Adopted events keep worker identity; workers are other processes.
        assert all(e["pid"] != journal._pid for e in work)
        # Exactly-once and durable: the parent's file holds each task's
        # event exactly once (workers are memory-only, one writer per file).
        on_disk = [e for e in read_journal(path) if e["name"] == "work_event"]
        assert sorted(e["attributes"]["index"] for e in on_disk) == \
            [0, 1, 2, 3]
        # Per-worker streams are never reordered.
        by_pid = {}
        for e in work:
            by_pid.setdefault(e["pid"], []).append(e["seq"])
        for seqs in by_pid.values():
            assert seqs == sorted(seqs)

    def test_respawn_then_serial_keeps_events_exactly_once(self, tmp_path):
        """A worker killed on task 0 breaks the pool on every attempt; the
        map degrades to serial.  Events from the dead attempts die with
        their results, so each task's event still lands exactly once —
        now emitted in-process — plus one pool_degraded marker."""
        faults.install_faults("worker:task=0")
        path = tmp_path / "events.jsonl"
        journal = obs_events.enable_events(path)
        with pytest.warns(RuntimeWarning, match="process pool broke"):
            results, used_pool = parallel_map_traced(
                _emitting_double, range(4), max_workers=2
            )
        assert results == [0, 2, 4, 6]
        assert used_pool is False

        work = [e for e in journal.events() if e["name"] == "work_event"]
        assert sorted(e["attributes"]["index"] for e in work) == [0, 1, 2, 3]
        assert all(e["pid"] == journal._pid for e in work)  # serial re-run
        degraded = [e for e in journal.events()
                    if e["name"] == "pool_degraded"]
        assert len(degraded) == 1
        on_disk = [e for e in read_journal(path) if e["name"] == "work_event"]
        assert sorted(e["attributes"]["index"] for e in on_disk) == \
            [0, 1, 2, 3]
