"""Property-based tests for the piecewise-linear-drive model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.integrate import solve_ivp

from repro.core import AsdmParameters, PwlDriveSsnModel

params_st = st.builds(
    AsdmParameters,
    k=st.floats(1e-3, 0.02),
    v0=st.floats(0.3, 0.8),
    lam=st.floats(1.0, 1.3),
)


@st.composite
def monotone_gate(draw, vdd=1.8):
    """A random monotone-rising gate waveform reaching vdd and holding."""
    n_knots = draw(st.integers(3, 8))
    # Random positive increments in time and voltage.
    dts = draw(
        st.lists(st.floats(0.02e-9, 0.4e-9), min_size=n_knots, max_size=n_knots)
    )
    dvs = draw(
        st.lists(st.floats(0.05, 1.0), min_size=n_knots, max_size=n_knots)
    )
    t = np.concatenate([[0.0], np.cumsum(dts)])
    v = np.concatenate([[0.0], np.cumsum(dvs)])
    v = np.minimum(v * (vdd / max(v[-1], vdd)), vdd)  # normalize into [0, vdd]
    # Hold flat for a while at the end.
    t = np.append(t, t[-1] + 1e-9)
    v = np.append(v, v[-1])
    return t, v


class TestAgainstOde:
    @settings(max_examples=40, deadline=None)
    @given(params=params_st, gate=monotone_gate(), n=st.integers(1, 16))
    def test_matches_numeric_integration(self, params, gate, n):
        t_knots, v_knots = gate
        if v_knots[-1] <= params.v0 + 0.05:
            return  # gate never convincingly turns the device on
        model = PwlDriveSsnModel(params, n, 5e-9, t_knots, v_knots)
        tau = model.time_constant
        nlk = n * 5e-9 * params.k

        def rhs(time, y):
            idx = int(np.clip(np.searchsorted(t_knots, time, side="right") - 1,
                              0, len(t_knots) - 2))
            s = (v_knots[idx + 1] - v_knots[idx]) / (t_knots[idx + 1] - t_knots[idx])
            return [(nlk * s - y[0]) / tau]

        t_end = float(t_knots[-1])
        sol = solve_ivp(
            rhs, (model.turn_on_time, t_end), [0.0],
            rtol=1e-9, atol=1e-13, dense_output=True, max_step=(t_end) / 200,
        )
        ts = np.linspace(model.turn_on_time, t_end, 100)
        np.testing.assert_allclose(
            np.asarray(model.voltage(ts)), sol.sol(ts)[0], atol=2e-3
        )

    @settings(max_examples=40, deadline=None)
    @given(params=params_st, gate=monotone_gate(), n=st.integers(1, 16))
    def test_peak_bounds_waveform(self, params, gate, n):
        t_knots, v_knots = gate
        if v_knots[-1] <= params.v0 + 0.05:
            return
        model = PwlDriveSsnModel(params, n, 5e-9, t_knots, v_knots)
        ts = np.linspace(0.0, float(t_knots[-1]), 500)
        assert model.peak_voltage() >= float(np.max(model.voltage(ts))) - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(params=params_st, gate=monotone_gate(), n=st.integers(1, 16))
    def test_nonnegative_for_monotone_rising_gate(self, params, gate, n):
        t_knots, v_knots = gate
        if v_knots[-1] <= params.v0 + 0.05:
            return
        model = PwlDriveSsnModel(params, n, 5e-9, t_knots, v_knots)
        ts = np.linspace(0.0, float(t_knots[-1]), 300)
        assert np.min(model.voltage(ts)) >= -1e-12
