"""Golden-parity and determinism tests for the simulation fast path.

The cached-assembly engine (linear base stamped once per solve, nonlinear
devices restamped per Newton iterate, no post-convergence re-assembly,
scalar device evaluation) must reproduce the frozen seed engine
(``TransientOptions(legacy_reference=True)``) to within 1e-9 V / 1e-9 A on
the paper's Fig. 2 driver-bank circuit, across both integration methods
and both stepping modes.  The parallel experiment layer must return
results identical to the serial path, in the same order.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.driver_bank import DriverBankSpec, build_driver_bank
from repro.analysis.montecarlo import peak_noise_distribution
from repro.analysis.parallel import parallel_map, resolve_workers
from repro.analysis.simulate import (
    default_stop_time,
    default_time_step,
    simulate_ssn,
    simulate_ssn_cached,
)
from repro.analysis.sweeps import sweep_driver_count
from repro.spice import Circuit, Ramp
from repro.spice.transient import TransientOptions, transient

#: Fast-path waveforms must stay within this of the seed engine.
PARITY_TOL = 1e-9


@pytest.fixture
def fig2_spec(tech018):
    """A small Fig. 2 driver bank: explicit devices, LC ground path."""
    return DriverBankSpec(
        technology=tech018,
        n_drivers=3,
        inductance=5e-9,
        rise_time=0.2e-9,
        capacitance=2e-12,
        load_capacitance=10e-12,
        collapse=False,
    )


def _run_both(spec, **option_kwargs):
    """One circuit per engine (element state is engine-owned but cached
    companion coefficients live on elements; separate instances keep the
    comparison airtight)."""
    tstop = default_stop_time(spec)
    dt = 4.0 * default_time_step(spec)  # coarser than production: parity
    # holds at any step size and the test stays fast.
    fast = transient(build_driver_bank(spec), tstop, dt,
                     options=TransientOptions(**option_kwargs))
    ref = transient(build_driver_bank(spec), tstop, dt,
                    options=TransientOptions(legacy_reference=True, **option_kwargs))
    return fast, ref


@pytest.mark.parametrize(
    "method,adaptive",
    [("trap", False), ("be", False), ("trap", True), ("be", True)],
    ids=["trap-fixed", "be-fixed", "trap-adaptive", "be-adaptive"],
)
def test_fastpath_matches_seed_engine(fig2_spec, method, adaptive):
    fast, ref = _run_both(fig2_spec, method=method, adaptive=adaptive)

    assert len(fast.times) == len(ref.times), "step sequences diverged"
    assert np.max(np.abs(fast.times - ref.times)) < 1e-18

    for node in ref.node_names:
        dv = np.max(np.abs(fast.voltage(node).y - ref.voltage(node).y))
        assert dv <= PARITY_TOL, f"node {node}: |dV| = {dv:.3e} V"

    circuit = build_driver_bank(fig2_spec)
    for el in circuit.elements:
        if not hasattr(el, "current"):
            continue
        di = np.max(np.abs(fast.current(el.name).y - ref.current(el.name).y))
        assert di <= PARITY_TOL, f"element {el.name}: |dI| = {di:.3e} A"


def test_fastpath_matches_seed_engine_linear_circuit():
    """Pure-RLC circuit: exercises the direct solve + LU cache across
    steps, dt changes and breakpoint restarts."""

    def make():
        c = Circuit("rlc")
        c.vsource("Vin", "in", "0", Ramp(0.0, 1.8, 0.1e-9, 0.2e-9))
        c.resistor("R1", "in", "mid", 25.0)
        c.inductor("L1", "mid", "out", 4e-9, ic=0.0)
        c.capacitor("C1", "out", "0", 3e-12, ic=0.0)
        return c

    for method in ("trap", "be"):
        fast = transient(make(), 2e-9, 5e-12, options=TransientOptions(method=method))
        ref = transient(make(), 2e-9, 5e-12,
                        options=TransientOptions(method=method, legacy_reference=True))
        assert len(fast.times) == len(ref.times)
        for node in ref.node_names:
            dv = np.max(np.abs(fast.voltage(node).y - ref.voltage(node).y))
            assert dv <= PARITY_TOL, f"{method}/{node}: |dV| = {dv:.3e} V"
        di = np.max(np.abs(fast.current("L1").y - ref.current("L1").y))
        assert di <= PARITY_TOL


def test_simulate_ssn_memoized_on_frozen_spec(tech018):
    spec = DriverBankSpec(
        technology=tech018, n_drivers=2, inductance=5e-9, rise_time=0.5e-9
    )
    first = simulate_ssn_cached(spec)
    # An equal-but-distinct spec hits the same cache entry.
    again = simulate_ssn_cached(dataclasses.replace(spec))
    assert again is first


class TestParallelDeterminism:
    def test_parallel_sweep_identical_to_serial(self, tech018):
        base = DriverBankSpec(
            technology=tech018, n_drivers=1, inductance=5e-9, rise_time=0.5e-9
        )
        estimators = {"const": lambda spec: 0.25}
        counts = [1, 2, 3]
        serial = sweep_driver_count(base, counts, estimators, max_workers=1)
        parallel = sweep_driver_count(base, counts, estimators, max_workers=4)

        assert serial.values() == parallel.values()
        assert serial.simulated_peaks() == parallel.simulated_peaks()
        for ps, pp in zip(serial.points, parallel.points):
            assert ps.estimates == pp.estimates
            assert ps.spec == pp.spec

    def test_parallel_montecarlo_identical_to_serial(self, asdm018, tech018):
        kwargs = dict(
            n_drivers=8, inductance=5e-9, vdd=tech018.vdd, rise_time=0.2e-9,
            trials=200, seed=7,
        )
        serial = peak_noise_distribution(asdm018, **kwargs, max_workers=1)
        parallel = peak_noise_distribution(asdm018, **kwargs, max_workers=4)
        assert np.array_equal(serial.samples, parallel.samples)
        assert serial.p95 == parallel.p95

    def test_parallel_map_preserves_order_and_values(self):
        items = list(range(24))
        assert parallel_map(_square, items, max_workers=4) == [i * i for i in items]

    def test_serial_fallback_when_single_worker(self):
        # Unpicklable closures are fine at max_workers=1 (no pool involved).
        assert parallel_map(lambda v: v + 1, [1, 2, 3], max_workers=1) == [2, 3, 4]

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAX_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        monkeypatch.setenv("REPRO_MAX_WORKERS", "5")
        assert resolve_workers(None) == 5
        # An explicit bad argument is a programming error and still raises.
        with pytest.raises(ValueError):
            resolve_workers(-2)

    @pytest.mark.parametrize("garbage", ["auto", "abc", "1.5", "-3"])
    def test_resolve_workers_garbage_env_falls_back_serial(self, monkeypatch, garbage):
        # A broken environment variable must degrade to serial with a
        # warning, never crash an experiment (satellite bugfix).
        monkeypatch.setenv("REPRO_MAX_WORKERS", garbage)
        with pytest.warns(RuntimeWarning, match="REPRO_MAX_WORKERS"):
            assert resolve_workers(None) == 1

    def test_resolve_workers_blank_env_is_serial_without_warning(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "   ")
        assert resolve_workers(None) == 1


def _square(v):
    return v * v


def test_legacy_reference_option_still_simulates(tech018):
    """The frozen seed engine stays usable end-to-end (benchmarks rely on it)."""
    spec = DriverBankSpec(
        technology=tech018, n_drivers=1, inductance=5e-9, rise_time=0.5e-9
    )
    sim = simulate_ssn(spec, options=TransientOptions(legacy_reference=True))
    assert sim.peak_voltage > 0.0
