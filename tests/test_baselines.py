"""Unit tests for the prior-art SSN estimators."""

import numpy as np
import pytest

from repro.baselines import JouSsnModel, SenthinathanSsnModel, SongSsnModel, VemuruSsnModel
from repro.core import AlphaPowerSsnParameters, SquareLawSsnParameters


@pytest.fixture
def alpha():
    return AlphaPowerSsnParameters(b=5e-3, vth=0.53, alpha=1.2)


@pytest.fixture
def square():
    return SquareLawSsnParameters(beta=8e-3, vth=0.55)


VDD = 1.8
L = 5e-9
TR = 0.5e-9


class TestVemuru:
    def test_frozen_transconductance(self, alpha):
        m = VemuruSsnModel(alpha, 8, L, VDD, TR)
        assert m.frozen_transconductance == pytest.approx(
            alpha.alpha * alpha.b * (VDD - alpha.vth) ** (alpha.alpha - 1)
        )

    def test_peak_formula(self, alpha):
        m = VemuruSsnModel(alpha, 8, L, VDD, TR)
        g = m.frozen_transconductance
        tau = 8 * L * g
        sr = VDD / TR
        expected = tau * sr * (1 - np.exp(-(VDD - alpha.vth) / (sr * tau)))
        assert m.peak_voltage() == pytest.approx(expected, rel=1e-12)

    def test_waveform_zero_before_threshold_crossing(self, alpha):
        m = VemuruSsnModel(alpha, 8, L, VDD, TR)
        t0 = alpha.vth / m.slope
        assert m.voltage(t0 * 0.9) == 0.0
        assert m.voltage(t0 * 1.5) > 0.0

    def test_waveform_nan_after_ramp(self, alpha):
        m = VemuruSsnModel(alpha, 8, L, VDD, TR)
        assert np.isnan(m.voltage(TR * 1.01))

    def test_peak_monotone_in_n(self, alpha):
        peaks = [VemuruSsnModel(alpha, n, L, VDD, TR).peak_voltage() for n in (1, 4, 16)]
        assert peaks[0] < peaks[1] < peaks[2]

    def test_validation(self, alpha):
        with pytest.raises(ValueError):
            VemuruSsnModel(alpha, 0, L, VDD, TR)
        with pytest.raises(ValueError):
            VemuruSsnModel(alpha, 8, L, 0.4, TR)


class TestSong:
    def test_peak_solves_implicit_equation(self, alpha):
        m = SongSsnModel(alpha, 8, L, VDD, TR)
        vmax = m.peak_voltage()
        assert abs(m._residual(vmax)) < 1e-9

    def test_peak_within_physical_range(self, alpha):
        vmax = SongSsnModel(alpha, 8, L, VDD, TR).peak_voltage()
        assert 0.0 < vmax < VDD - alpha.vth

    def test_peak_monotone_in_n(self, alpha):
        peaks = [SongSsnModel(alpha, n, L, VDD, TR).peak_voltage() for n in (1, 4, 16)]
        assert peaks[0] < peaks[1] < peaks[2]

    def test_linear_vn_underestimates_vs_vemuru(self, alpha):
        """Song's linear-Vn assumption gives lower peaks than Vemuru's."""
        song = SongSsnModel(alpha, 8, L, VDD, TR).peak_voltage()
        vemuru = VemuruSsnModel(alpha, 8, L, VDD, TR).peak_voltage()
        assert song < vemuru


class TestJou:
    def test_expansion_point_default_midwindow(self, alpha):
        m = JouSsnModel(alpha, 8, L, VDD, TR)
        assert m.expansion_point == pytest.approx((alpha.vth + VDD) / 2)

    def test_effective_turn_on_above_vth(self, alpha):
        m = JouSsnModel(alpha, 8, L, VDD, TR)
        assert m.effective_turn_on > alpha.vth

    def test_tangent_line_consistency(self, alpha):
        """The linearization is tangent to the alpha-power law at M."""
        m = JouSsnModel(alpha, 8, L, VDD, TR)
        point = m.expansion_point
        linear_at_point = m.linear_slope * (point - m.effective_turn_on)
        assert linear_at_point == pytest.approx(
            float(alpha.saturation_current(point)), rel=1e-12
        )

    def test_expansion_fraction_knob(self, alpha):
        low = JouSsnModel(alpha, 8, L, VDD, TR, expansion_fraction=0.25)
        high = JouSsnModel(alpha, 8, L, VDD, TR, expansion_fraction=0.9)
        assert low.expansion_point < high.expansion_point
        with pytest.raises(ValueError):
            JouSsnModel(alpha, 8, L, VDD, TR, expansion_fraction=0.0)


class TestSenthinathan:
    def test_closed_form(self, square):
        m = SenthinathanSsnModel(square, 8, L, VDD, TR)
        sr = VDD / TR
        nlbs = 8 * L * square.beta * sr
        expected = nlbs * (VDD - square.vth) / (1 + nlbs)
        assert m.peak_voltage() == pytest.approx(expected, rel=1e-12)

    def test_peak_bounded_by_overdrive(self, square):
        vmax = SenthinathanSsnModel(square, 64, L, VDD, TR).peak_voltage()
        assert vmax < VDD - square.vth

    def test_peak_monotone_in_n(self, square):
        peaks = [
            SenthinathanSsnModel(square, n, L, VDD, TR).peak_voltage() for n in (1, 4, 16)
        ]
        assert peaks[0] < peaks[1] < peaks[2]


class TestCrossModel:
    def test_all_positive_at_nominal(self, alpha, square):
        for m in (
            VemuruSsnModel(alpha, 8, L, VDD, TR),
            SongSsnModel(alpha, 8, L, VDD, TR),
            JouSsnModel(alpha, 8, L, VDD, TR),
            SenthinathanSsnModel(square, 8, L, VDD, TR),
        ):
            assert m.peak_voltage() > 0.0

    def test_names_distinct(self, alpha, square):
        names = {
            VemuruSsnModel.name,
            SongSsnModel.name,
            JouSsnModel.name,
            SenthinathanSsnModel.name,
        }
        assert len(names) == 4
