"""Campaign runner: checkpoint/resume, chunking, journaling, wrappers.

The fault-free contracts: a campaign must return exactly what the direct
execution paths return (bit-identical peaks and samples), journal progress
as valid JSONL committed atomically, resume from any prefix of that
journal without recomputing finished chunks, and refuse to resume from a
journal written by a different workload.  Failure-path behavior lives in
``test_campaign_faults``.
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.analysis.campaign import (
    CampaignConfig,
    CampaignRunner,
    CheckpointMismatchError,
)
from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.montecarlo import transient_peak_distribution
from repro.analysis.simulate import simulate_many
from repro.analysis.sweeps import sweep
from repro.testing import faults


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    faults.clear_faults()
    yield
    faults.clear_faults()


def _specs(tech, counts):
    base = DriverBankSpec(
        technology=tech, n_drivers=1, inductance=1e-9, rise_time=0.5e-9
    )
    return [dataclasses.replace(base, n_drivers=n) for n in counts]


def _config(**kwargs):
    kwargs.setdefault("backoff_base", 0.0)
    kwargs.setdefault("max_workers", 1)
    kwargs.setdefault("engine", "scalar")
    return CampaignConfig(**kwargs)


class TestCleanRuns:
    def test_matches_direct_simulate_many(self, tech018):
        specs = _specs(tech018, [1, 2, 3, 4, 5])
        direct = simulate_many(specs, engine="scalar")
        runner = CampaignRunner(_config(chunk_size=2))
        summaries = runner.run_simulate(specs)
        assert [s.peak_voltage for s in summaries] == [
            d.peak_voltage for d in direct
        ]
        assert [s.peak_time for s in summaries] == [d.peak_time for d in direct]
        assert [s.engine for s in summaries] == ["scalar"] * len(specs)

    def test_clean_telemetry_is_quiet(self, tech018):
        runner = CampaignRunner(_config(chunk_size=2))
        runner.run_simulate(_specs(tech018, [1, 2, 3]))
        tel = runner.telemetry
        assert (tel.retries, tel.degradations, tel.chunks_failed) == (0, 0, 0)
        assert tel.unrecovered_failures == 0
        assert tel.checkpoint_writes == 0  # no checkpoint configured

    def test_batch_rung_matches_batch_engine(self, tech018):
        specs = _specs(tech018, [2, 3, 4, 6])
        direct = simulate_many(specs, engine="batch")
        runner = CampaignRunner(_config(chunk_size=4, engine="batch"))
        summaries = runner.run_simulate(specs)
        assert [s.peak_voltage for s in summaries] == [
            d.peak_voltage for d in direct
        ]
        assert all(s.engine == "batch" for s in summaries)

    def test_empty_workload(self):
        assert CampaignRunner(_config()).run_simulate([]) == []


class TestCheckpointJournal:
    def test_journal_is_valid_jsonl_with_header(self, tech018, tmp_path):
        ckpt = tmp_path / "run.jsonl"
        runner = CampaignRunner(_config(checkpoint=ckpt, chunk_size=2))
        runner.run_simulate(_specs(tech018, [1, 2, 3, 4, 5]))
        lines = ckpt.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["version"] == 1
        assert header["kind"] == "simulate"
        assert header["n_items"] == 5
        chunks = [json.loads(line) for line in lines[1:]]
        assert [c["chunk"] for c in chunks] == [0, 1, 2]
        indices = [i for c in chunks for i in c["indices"]]
        assert indices == [0, 1, 2, 3, 4]
        for c in chunks:
            for rec in c["records"]:
                assert np.isfinite(rec["peak"])
        # header write + one commit per chunk
        assert runner.telemetry.checkpoint_writes == 4
        assert not list(tmp_path.glob("*.tmp"))

    def test_resume_from_complete_journal_recomputes_nothing(
        self, tech018, tmp_path
    ):
        specs = _specs(tech018, [1, 2, 3, 4, 5])
        ckpt = tmp_path / "run.jsonl"
        first = CampaignRunner(_config(checkpoint=ckpt, chunk_size=2))
        baseline = first.run_simulate(specs)

        second = CampaignRunner(_config(checkpoint=ckpt, chunk_size=2,
                                        resume=True))
        resumed = second.run_simulate(specs)
        assert [s.peak_voltage for s in resumed] == [
            s.peak_voltage for s in baseline
        ]
        assert second.telemetry.checkpoint_writes == 0

    def test_resume_from_partial_journal_is_bit_identical(
        self, tech018, tmp_path
    ):
        specs = _specs(tech018, [1, 2, 3, 4, 5, 6])
        ckpt = tmp_path / "run.jsonl"
        first = CampaignRunner(_config(checkpoint=ckpt, chunk_size=2))
        baseline = first.run_simulate(specs)

        # Keep the header and the first completed chunk only: the resumed
        # run must re-execute chunks 1-2 and splice everything together
        # exactly as the uninterrupted run reported it.
        lines = ckpt.read_text().splitlines()
        ckpt.write_text("\n".join(lines[:2]) + "\n")
        second = CampaignRunner(_config(checkpoint=ckpt, chunk_size=2,
                                        resume=True))
        resumed = second.run_simulate(specs)
        assert [s.peak_voltage for s in resumed] == [
            s.peak_voltage for s in baseline
        ]
        assert [s.peak_time for s in resumed] == [
            s.peak_time for s in baseline
        ]
        assert second.telemetry.checkpoint_writes == 2

    def test_fingerprint_mismatch_is_rejected(self, tech018, tmp_path):
        ckpt = tmp_path / "run.jsonl"
        CampaignRunner(_config(checkpoint=ckpt, chunk_size=2)).run_simulate(
            _specs(tech018, [1, 2, 3])
        )
        other = CampaignRunner(_config(checkpoint=ckpt, chunk_size=2,
                                       resume=True))
        with pytest.raises(CheckpointMismatchError):
            other.run_simulate(_specs(tech018, [4, 5, 6]))

    def test_chunk_size_participates_in_fingerprint(self, tech018, tmp_path):
        specs = _specs(tech018, [1, 2, 3])
        ckpt = tmp_path / "run.jsonl"
        CampaignRunner(_config(checkpoint=ckpt, chunk_size=2)).run_simulate(specs)
        other = CampaignRunner(_config(checkpoint=ckpt, chunk_size=3,
                                       resume=True))
        with pytest.raises(CheckpointMismatchError):
            other.run_simulate(specs)

    def test_resume_without_journal_runs_fresh(self, tech018, tmp_path):
        runner = CampaignRunner(
            _config(checkpoint=tmp_path / "fresh.jsonl", resume=True,
                    chunk_size=2)
        )
        summaries = runner.run_simulate(_specs(tech018, [1, 2]))
        assert len(summaries) == 2


class TestWorkloadWrappers:
    def test_sweep_campaign_matches_direct(self, tech018):
        base = _specs(tech018, [1])[0]
        values = [1, 2, 4]
        apply = lambda spec, n: dataclasses.replace(spec, n_drivers=int(n))
        estimators = {"linear": lambda spec: 0.02 * spec.n_drivers}
        direct = sweep("n_drivers", base, values, apply, estimators,
                       max_workers=1, engine="scalar")
        via_campaign = sweep("n_drivers", base, values, apply, estimators,
                             campaign=_config(chunk_size=2))
        assert via_campaign.knob == direct.knob
        assert via_campaign.values() == direct.values()
        assert via_campaign.simulated_peaks() == direct.simulated_peaks()
        assert via_campaign.estimate_series("linear") == \
            direct.estimate_series("linear")

    def test_montecarlo_campaign_matches_direct(self, tech018):
        spec = _specs(tech018, [2])[0]
        direct = transient_peak_distribution(spec, trials=4, seed=7,
                                             engine="scalar")
        via_campaign = transient_peak_distribution(
            spec, trials=4, seed=7, campaign=_config(chunk_size=2)
        )
        assert np.array_equal(via_campaign.samples, direct.samples)
        assert via_campaign.nominal == direct.nominal
        assert via_campaign.mean == direct.mean
        assert via_campaign.p95 == direct.p95

    def test_journal_round_trip_preserves_float_bits(self, tech018, tmp_path):
        """Peaks replayed from the JSONL journal are the exact floats the
        original run computed — json round-trips repr exactly."""
        specs = _specs(tech018, [1, 2, 3, 4])
        ckpt = tmp_path / "run.jsonl"
        first = CampaignRunner(_config(checkpoint=ckpt, chunk_size=2))
        baseline = first.run_simulate(specs)
        lines = ckpt.read_text().splitlines()
        journaled = {
            rec["index"]: rec["peak"]
            for line in lines[1:]
            for rec in json.loads(line)["records"]
        }
        for summary in baseline:
            assert journaled[summary.index] == summary.peak_voltage


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_size": 0},
            {"max_retries": -1},
            {"deadline": 0.0},
            {"backoff_base": -0.1},
        ],
    )
    def test_bad_knobs_raise(self, kwargs):
        with pytest.raises(ValueError):
            CampaignConfig(**kwargs)

    def test_config_and_kwargs_are_exclusive(self):
        with pytest.raises(TypeError):
            CampaignRunner(CampaignConfig(), chunk_size=4)
