"""Property-based tests (hypothesis) for the circuit simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice import Circuit, Dc, Ramp, Waveform, dc_operating_point, transient

resistances = st.floats(min_value=10.0, max_value=1e5)
capacitances = st.floats(min_value=0.1e-12, max_value=10e-12)
inductances = st.floats(min_value=0.5e-9, max_value=20e-9)
voltages = st.floats(min_value=-5.0, max_value=5.0)


class TestDcProperties:
    @settings(max_examples=50, deadline=None)
    @given(r1=resistances, r2=resistances, v=voltages)
    def test_divider_ratio(self, r1, r2, v):
        c = Circuit()
        c.vsource("V1", "top", "0", Dc(v))
        c.resistor("R1", "top", "mid", r1)
        c.resistor("R2", "mid", "0", r2)
        sol = dc_operating_point(c)
        assert sol.voltage("mid") == pytest.approx(v * r2 / (r1 + r2), rel=1e-9, abs=1e-12)

    @settings(max_examples=30, deadline=None)
    @given(r=resistances, v=voltages)
    def test_kcl_at_source(self, r, v):
        c = Circuit()
        c.vsource("V1", "a", "0", Dc(v))
        c.resistor("R1", "a", "0", r)
        sol = dc_operating_point(c)
        assert sol.current("V1") == pytest.approx(-v / r, rel=1e-9, abs=1e-15)


class TestTransientProperties:
    @settings(max_examples=20, deadline=None)
    @given(r=st.floats(100.0, 10e3), cap=capacitances, v0=st.floats(0.1, 3.0))
    def test_rc_discharge_exponential(self, r, cap, v0):
        tau = r * cap
        c = Circuit()
        c.resistor("R1", "a", "0", r)
        c.capacitor("C1", "a", "0", cap, ic=v0)
        res = transient(c, 3 * tau, tau / 200)
        v = res.voltage("a")
        assert v.value_at(tau) == pytest.approx(v0 * np.exp(-1), rel=2e-3)
        assert v.value_at(3 * tau) == pytest.approx(v0 * np.exp(-3), rel=2e-2)

    @settings(max_examples=20, deadline=None)
    @given(r=st.floats(5.0, 200.0), l=inductances, cap=capacitances)
    def test_rlc_final_value(self, r, l, cap):
        """Any series RLC driven by a DC step settles at the step value."""
        c = Circuit()
        c.vsource("V1", "in", "0", Ramp(0, 1.0, 0, 1e-12))
        c.resistor("R1", "in", "m", r)
        c.inductor("L1", "m", "o", l)
        c.capacitor("C1", "o", "0", cap, ic=0.0)
        period = 2 * np.pi * np.sqrt(l * cap)
        decay = max(2 * l / r, r * cap)
        tstop = max(20 * decay, 5 * period)
        res = transient(c, tstop, min(period / 60, tstop / 400))
        assert res.voltage("o").value_at(tstop) == pytest.approx(1.0, abs=0.02)

    @settings(max_examples=20, deadline=None)
    @given(cap=capacitances, v0=st.floats(0.5, 3.0))
    def test_charge_conservation_two_capacitors(self, cap, v0):
        """Charge sharing through a resistor conserves total charge."""
        c = Circuit()
        c.capacitor("C1", "a", "0", cap, ic=v0)
        c.capacitor("C2", "b", "0", cap, ic=0.0)
        c.resistor("R1", "a", "b", 1e3)
        tau = 1e3 * cap / 2
        res = transient(c, 10 * tau, tau / 100)
        va = res.voltage("a").value_at(10 * tau)
        vb = res.voltage("b").value_at(10 * tau)
        assert va == pytest.approx(v0 / 2, rel=5e-3)
        assert vb == pytest.approx(v0 / 2, rel=5e-3)


class TestWaveformProperties:
    @settings(max_examples=50)
    @given(
        st.lists(st.floats(-10, 10), min_size=2, max_size=40),
        st.floats(0.1, 10.0),
    )
    def test_peak_is_max_sample(self, values, dt):
        t = np.arange(len(values)) * dt
        w = Waveform(t, np.array(values))
        _, peak = w.peak()
        assert peak == max(values)

    @settings(max_examples=50)
    @given(st.lists(st.floats(-10, 10), min_size=3, max_size=40))
    def test_interpolation_bounded_by_neighbors(self, values):
        t = np.arange(len(values), dtype=float)
        w = Waveform(t, np.array(values))
        mid = w.value_at(1.5)
        assert min(values[1], values[2]) - 1e-12 <= mid <= max(values[1], values[2]) + 1e-12

    @settings(max_examples=30)
    @given(st.lists(st.floats(-5, 5), min_size=2, max_size=30))
    def test_integral_additive_over_windows(self, values):
        t = np.linspace(0, 1, len(values))
        w = Waveform(t, np.array(values))
        if len(values) < 4:
            return
        total = w.integral()
        split = w.window(0, 0.5).integral() + w.window(0.5, 1.0).integral()
        assert split == pytest.approx(total, rel=1e-9, abs=1e-9)
