"""Integration test for E14: impedance peaking vs damping regions."""

import pytest

from repro.core import DampingRegion
from repro.experiments import impedance


@pytest.fixture(scope="module")
def result():
    return impedance.run(driver_counts=(1, 4, 8, 16))


class TestImpedanceExperiment:
    def test_peak_tracks_resonant_frequency(self, result):
        for point in result.points:
            assert point.peak_frequency == pytest.approx(
                result.resonant_frequency, rel=0.05
            )

    def test_peak_impedance_is_driver_conductance(self, result):
        """At resonance L and C cancel: |Z|max ~ 1/(N*K*lambda)."""
        from repro.experiments.common import fitted_models

        params = fitted_models(result.technology_name).asdm
        for point in result.points:
            expected = 1.0 / (point.n_drivers * params.k * params.lam)
            assert point.peak_impedance == pytest.approx(expected, rel=0.15)

    def test_peaking_ratio_is_quality_factor(self, result):
        """Q = 1/(2*zeta): Eqn 15's damping ratio measured in ohms."""
        for point in result.points:
            assert point.peaking_ratio == pytest.approx(
                1.0 / (2.0 * point.zeta), rel=0.20
            )

    def test_underdamped_rows_peak_overdamped_rows_flat(self, result):
        for point in result.points:
            if point.region is DampingRegion.UNDERDAMPED and point.zeta < 0.5:
                assert point.peaking_ratio > 1.0
            if point.region is DampingRegion.OVERDAMPED:
                assert point.peaking_ratio < 1.0

    def test_impedance_decreases_with_n(self, result):
        peaks = [p.peak_impedance for p in result.points]
        assert all(b < a for a, b in zip(peaks, peaks[1:]))

    def test_report_renders(self, result):
        assert "PDN impedance" in result.format_report()
