"""White-box tests for individual element stamps (companion-model math)."""

import numpy as np
import pytest

from repro.spice import Circuit, Dc
from repro.spice.mna import MnaSystem


def context_for(circuit, mode="tran", dt=1e-12, method="be", states=None, x=None):
    system = MnaSystem(circuit)
    x = np.zeros(system.size) if x is None else x
    ctx = system.context(mode, 0.0, dt, method, states if states is not None else {}, x, 1e-12)
    return system, ctx


class TestResistorStamp:
    def test_conductance_pattern(self):
        c = Circuit()
        c.resistor("R1", "a", "b", 2.0)
        _, ctx = context_for(c)
        c.element("R1").stamp(ctx)
        g = 0.5
        a, b = c.node_id("a") - 1, c.node_id("b") - 1
        assert ctx.A[a, a] == pytest.approx(g)
        assert ctx.A[b, b] == pytest.approx(g)
        assert ctx.A[a, b] == pytest.approx(-g)
        assert ctx.A[b, a] == pytest.approx(-g)

    def test_ground_row_skipped(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 2.0)
        _, ctx = context_for(c)
        c.element("R1").stamp(ctx)
        assert ctx.A.shape == (1, 1)
        assert ctx.A[0, 0] == pytest.approx(0.5)


class TestCapacitorCompanion:
    def test_backward_euler_values(self):
        c = Circuit()
        cap = c.capacitor("C1", "a", "0", 2e-12, ic=1.5)
        states = {cap: {"v": 1.5, "i": 0.0, "first_step": True}}
        _, ctx = context_for(c, dt=1e-12, method="be", states=states)
        cap.stamp(ctx)
        geq = 2e-12 / 1e-12
        assert ctx.A[0, 0] == pytest.approx(geq)
        assert ctx.z[0] == pytest.approx(geq * 1.5)

    def test_trapezoidal_values(self):
        c = Circuit()
        cap = c.capacitor("C1", "a", "0", 2e-12)
        states = {cap: {"v": 1.0, "i": 0.5e-3, "first_step": False}}
        _, ctx = context_for(c, dt=1e-12, method="trap", states=states)
        cap.stamp(ctx)
        geq = 2 * 2e-12 / 1e-12
        assert ctx.A[0, 0] == pytest.approx(geq)
        assert ctx.z[0] == pytest.approx(geq * 1.0 + 0.5e-3)

    def test_first_step_forces_backward_euler(self):
        c = Circuit()
        cap = c.capacitor("C1", "a", "0", 2e-12)
        states = {cap: {"v": 1.0, "i": 0.5e-3, "first_step": True}}
        _, ctx = context_for(c, dt=1e-12, method="trap", states=states)
        cap.stamp(ctx)
        assert ctx.A[0, 0] == pytest.approx(2e-12 / 1e-12)  # BE geq, not 2x

    def test_dc_mode_open(self):
        c = Circuit()
        cap = c.capacitor("C1", "a", "0", 2e-12)
        _, ctx = context_for(c, mode="dc")
        cap.stamp(ctx)
        assert np.all(ctx.A == 0.0)


class TestInductorCompanion:
    def test_branch_rows_backward_euler(self):
        c = Circuit()
        ind = c.inductor("L1", "a", "0", 4e-9, ic=2e-3)
        states = {ind: {"i": 2e-3, "v": 0.0, "first_step": True}}
        system, ctx = context_for(c, dt=1e-12, method="be", states=states)
        ind.stamp(ctx)
        row = system.num_node_unknowns  # the branch row
        req = 4e-9 / 1e-12
        assert ctx.A[0, row] == pytest.approx(1.0)  # KCL coupling
        assert ctx.A[row, 0] == pytest.approx(1.0)  # v(a) term
        assert ctx.A[row, row] == pytest.approx(-req)
        assert ctx.z[row] == pytest.approx(-req * 2e-3)

    def test_dc_mode_is_short(self):
        c = Circuit()
        ind = c.inductor("L1", "a", "b", 4e-9)
        system, ctx = context_for(c, mode="dc")
        ind.stamp(ctx)
        row = system.num_node_unknowns
        assert ctx.A[row, row] == 0.0  # no -R term: pure v(a)-v(b)=0


class TestSourceStamps:
    def test_vsource_branch_equation(self):
        c = Circuit()
        v = c.vsource("V1", "a", "0", Dc(3.3))
        system, ctx = context_for(c)
        v.stamp(ctx)
        row = system.num_node_unknowns
        assert ctx.A[row, 0] == pytest.approx(1.0)
        assert ctx.z[row] == pytest.approx(3.3)

    def test_isource_rhs_direction(self):
        c = Circuit()
        i = c.isource("I1", "a", "b", Dc(1e-3))
        _, ctx = context_for(c)
        i.stamp(ctx)
        a, b = c.node_id("a") - 1, c.node_id("b") - 1
        assert ctx.z[a] == pytest.approx(-1e-3)  # current leaves a
        assert ctx.z[b] == pytest.approx(+1e-3)


class TestCommitBookkeeping:
    def test_capacitor_commit_updates_state(self):
        c = Circuit()
        cap = c.capacitor("C1", "a", "0", 1e-12)
        states = {cap: {"v": 0.0, "i": 0.0, "first_step": True}}
        system, ctx = context_for(
            c, dt=1e-12, method="be", states=states, x=np.array([2.0])
        )
        cap.stamp(ctx)
        cap.commit(ctx)
        assert states[cap]["v"] == pytest.approx(2.0)
        assert states[cap]["i"] == pytest.approx(1e-12 / 1e-12 * 2.0)
        assert states[cap]["first_step"] is False
