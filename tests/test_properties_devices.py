"""Property-based tests (hypothesis) for the device models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AsdmParameters
from repro.devices import (
    AlphaPowerMosfet,
    AlphaPowerParameters,
    BsimLikeMosfet,
    BsimLikeParameters,
    Level1Mosfet,
    Level1Parameters,
)

vgs_values = st.floats(min_value=-0.5, max_value=2.5)
vds_values = st.floats(min_value=0.0, max_value=2.5)
vbs_values = st.floats(min_value=-1.0, max_value=0.0)


@st.composite
def bsim_devices(draw):
    return BsimLikeMosfet(
        BsimLikeParameters(
            vth0=draw(st.floats(0.3, 0.7)),
            mu0=draw(st.floats(0.02, 0.05)),
            ec=draw(st.floats(2e6, 8e6)),
            theta=draw(st.floats(0.1, 0.4)),
            w=draw(st.floats(1e-6, 100e-6)),
        )
    )


class TestGoldenDeviceProperties:
    @settings(max_examples=80)
    @given(dev=bsim_devices(), vgs=vgs_values, vds=vds_values, vbs=vbs_values)
    def test_current_nonnegative_for_forward_vds(self, dev, vgs, vds, vbs):
        assert dev.ids(vgs, vds, vbs) >= 0.0

    @settings(max_examples=80)
    @given(dev=bsim_devices(), vgs=vgs_values, vds=vds_values, vbs=vbs_values)
    def test_current_finite_everywhere(self, dev, vgs, vds, vbs):
        assert np.isfinite(dev.ids(vgs, vds, vbs))
        assert np.isfinite(dev.ids(vgs, -vds, vbs))

    @settings(max_examples=60)
    @given(dev=bsim_devices(), vds=st.floats(0.1, 2.5), vbs=vbs_values)
    def test_monotone_in_gate_voltage(self, dev, vds, vbs):
        vg = np.linspace(-0.5, 2.5, 60)
        ids = dev.ids(vg, vds, vbs)
        assert np.all(np.diff(ids) >= -1e-15)

    @settings(max_examples=60)
    @given(dev=bsim_devices(), vgs=st.floats(0.8, 2.5), vbs=vbs_values)
    def test_monotone_in_drain_voltage(self, dev, vgs, vbs):
        vds = np.linspace(0.0, 2.5, 60)
        ids = dev.ids(vgs, vds, vbs)
        assert np.all(np.diff(ids) >= -1e-15)

    @settings(max_examples=60)
    @given(dev=bsim_devices(), vgs=st.floats(0.8, 2.0), vds=st.floats(0.2, 2.0))
    def test_reverse_body_bias_reduces_current(self, dev, vgs, vds):
        assert dev.ids(vgs, vds, -0.8) <= dev.ids(vgs, vds, 0.0) + 1e-15

    @settings(max_examples=40)
    @given(dev=bsim_devices(), vgs=st.floats(0.5, 2.0), vds=st.floats(0.05, 2.0))
    def test_partials_match_definition(self, dev, vgs, vds):
        """The finite-difference partials must be directional derivatives."""
        op = dev.partials(vgs, vds, 0.0)
        h = 1e-4
        gm_ref = (dev.ids(vgs + h, vds) - dev.ids(vgs - h, vds)) / (2 * h)
        assert op.gm == pytest.approx(float(gm_ref), rel=1e-2, abs=1e-9)


class TestModelFamilyConsistency:
    @settings(max_examples=60)
    @given(
        kp=st.floats(50e-6, 300e-6),
        vth=st.floats(0.3, 0.7),
        vgs=st.floats(0.0, 2.5),
        vds=st.floats(0.0, 2.5),
    )
    def test_alpha2_matches_level1_in_saturation(self, kp, vth, vgs, vds):
        """alpha-power at alpha=2 equals the square law in saturation."""
        w, length = 10e-6, 1e-6
        beta = kp * w / length
        level1 = Level1Mosfet(Level1Parameters(kp=kp, vth0=vth, w=w, l=length, lam=0.0, gamma=0.0))
        alpha = AlphaPowerMosfet(
            AlphaPowerParameters(b=beta / 2 / w, alpha=2.0, vth=vth, kv=1.0, w=w)
        )
        vov = vgs - vth
        if vov <= 0 or vds < max(vov, 1.0):
            return  # compare only in mutual saturation
        assert float(alpha.ids(vgs, vds)) == pytest.approx(
            float(level1.ids(vgs, vds)), rel=1e-9
        )


class TestAsdmProperties:
    @settings(max_examples=80)
    @given(
        k=st.floats(1e-4, 0.1),
        v0=st.floats(0.2, 1.0),
        lam=st.floats(1.0, 1.5),
        vg=st.floats(0.0, 2.5),
        vs=st.floats(0.0, 1.0),
    )
    def test_current_nonnegative_and_piecewise_linear(self, k, v0, lam, vg, vs):
        params = AsdmParameters(k=k, v0=v0, lam=lam)
        i = params.drain_current(vg, vs)
        assert i >= 0.0
        overdrive = vg - v0 - lam * vs
        if overdrive > 0:
            assert i == pytest.approx(k * overdrive, rel=1e-12)
        else:
            assert i == 0.0

    @settings(max_examples=50)
    @given(
        k=st.floats(1e-4, 0.1),
        v0=st.floats(0.2, 1.0),
        lam=st.floats(1.0, 1.5),
        factor=st.floats(0.1, 20.0),
    )
    def test_scaling_commutes_with_evaluation(self, k, v0, lam, factor):
        params = AsdmParameters(k=k, v0=v0, lam=lam)
        assert params.scaled(factor).drain_current(1.6, 0.1) == pytest.approx(
            factor * params.drain_current(1.6, 0.1), rel=1e-12
        )
