"""Tests for technology-card JSON serialization."""

import dataclasses
import json

import pytest

from repro.process import TSMC018, TSMC025
from repro.process.io import (
    FORMAT_VERSION,
    load_technology,
    save_technology,
    technology_from_dict,
    technology_to_dict,
)


class TestRoundTrip:
    def test_full_card(self, tmp_path):
        path = tmp_path / "tech.json"
        save_technology(TSMC018, path)
        back = load_technology(path)
        assert back == TSMC018

    def test_all_builtin_cards(self, tmp_path):
        from repro.process import list_technologies, get_technology

        for name in list_technologies():
            tech = get_technology(name)
            path = tmp_path / f"{name}.json"
            save_technology(tech, path)
            assert load_technology(path) == tech

    def test_card_without_pmos(self, tmp_path):
        nmos_only = dataclasses.replace(TSMC018, pmos=None)
        path = tmp_path / "n.json"
        save_technology(nmos_only, path)
        back = load_technology(path)
        assert back.pmos is None
        assert back.nmos == TSMC018.nmos

    def test_rebuilt_card_is_usable(self, tmp_path):
        path = tmp_path / "tech.json"
        save_technology(TSMC025, path)
        back = load_technology(path)
        dev = back.driver_device()
        assert dev.ids(back.vdd, back.vdd) > 0


class TestValidation:
    def test_version_mismatch(self):
        data = technology_to_dict(TSMC018)
        data["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            technology_from_dict(data)

    def test_unknown_top_level_field(self):
        data = technology_to_dict(TSMC018)
        data["oxide_thickness"] = 4e-9
        with pytest.raises(ValueError, match="oxide_thickness"):
            technology_from_dict(data)

    def test_unknown_device_field(self):
        data = technology_to_dict(TSMC018)
        data["nmos"]["vth_typo"] = 0.5
        with pytest.raises(ValueError, match="vth_typo"):
            technology_from_dict(data)

    def test_device_validation_still_applies(self):
        data = technology_to_dict(TSMC018)
        data["nmos"]["w"] = -1.0
        with pytest.raises(ValueError):
            technology_from_dict(data)

    def test_file_is_readable_json(self, tmp_path):
        path = tmp_path / "tech.json"
        save_technology(TSMC018, path)
        parsed = json.loads(path.read_text())
        assert parsed["name"] == "tsmc018"
        assert parsed["format_version"] == FORMAT_VERSION
