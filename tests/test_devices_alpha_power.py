"""Unit tests for the Sakurai-Newton alpha-power-law model."""

import numpy as np
import pytest

from repro.devices import AlphaPowerMosfet, AlphaPowerParameters


@pytest.fixture
def dev():
    return AlphaPowerMosfet(AlphaPowerParameters())


class TestSaturation:
    def test_power_law_exponent(self):
        dev = AlphaPowerMosfet(AlphaPowerParameters(alpha=1.3, vth=0.5))
        i1 = dev.ids(0.5 + 0.4, 1.8)
        i2 = dev.ids(0.5 + 0.8, 1.8)
        assert i2 / i1 == pytest.approx(2**1.3, rel=1e-9)

    def test_alpha_two_matches_square_law_shape(self):
        dev = AlphaPowerMosfet(AlphaPowerParameters(alpha=2.0, vth=0.5))
        i1 = dev.ids(0.5 + 0.3, 1.8)
        i2 = dev.ids(0.5 + 0.6, 1.8)
        assert i2 / i1 == pytest.approx(4.0, rel=1e-9)

    def test_width_scaling(self):
        lo = AlphaPowerMosfet(AlphaPowerParameters(w=10e-6))
        hi = AlphaPowerMosfet(AlphaPowerParameters(w=30e-6))
        assert hi.ids(1.5, 1.8) == pytest.approx(3 * lo.ids(1.5, 1.8), rel=1e-12)

    def test_cutoff(self, dev):
        assert dev.ids(dev.params.vth - 0.05, 1.8) == 0.0
        assert dev.ids(0.0, 1.8) == 0.0


class TestTriode:
    def test_vdsat_power_law(self, dev):
        p = dev.params
        vov = 0.8
        expected = p.kv * vov ** (p.alpha / 2)
        assert dev.saturation_drain_voltage(p.vth + vov) == pytest.approx(expected, rel=1e-12)

    def test_triode_parabola_peaks_at_vdsat(self, dev):
        p = dev.params
        vgs = p.vth + 0.8
        vdsat = float(dev.saturation_drain_voltage(vgs))
        isat = dev.ids(vgs, vdsat + 0.5)
        # At vds = vdsat the triode expression equals Idsat (continuity).
        assert dev.ids(vgs, vdsat) == pytest.approx(isat, rel=1e-9)

    def test_triode_monotone_in_vds(self, dev):
        p = dev.params
        vgs = p.vth + 0.8
        vdsat = float(dev.saturation_drain_voltage(vgs))
        vds = np.linspace(0, vdsat, 30)
        ids = dev.ids(vgs, vds)
        assert np.all(np.diff(ids) > 0)

    def test_zero_current_at_zero_vds(self, dev):
        assert dev.ids(1.5, 0.0) == 0.0


class TestValidation:
    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            AlphaPowerParameters(alpha=0.3)
        with pytest.raises(ValueError):
            AlphaPowerParameters(alpha=2.6)

    def test_nonpositive_strength_rejected(self):
        with pytest.raises(ValueError):
            AlphaPowerParameters(b=0.0)
        with pytest.raises(ValueError):
            AlphaPowerParameters(kv=-1.0)

    def test_body_effect_optional(self):
        none = AlphaPowerMosfet(AlphaPowerParameters(gamma=0.0))
        some = AlphaPowerMosfet(AlphaPowerParameters(gamma=0.4))
        assert none.ids(1.2, 1.8, -0.5) == none.ids(1.2, 1.8, 0.0)
        assert some.ids(1.2, 1.8, -0.5) < some.ids(1.2, 1.8, 0.0)
