"""Unit tests for effective-ramp extraction."""

import numpy as np
import pytest

from repro.analysis import crossing_time, extract_effective_ramp
from repro.spice import Waveform


def exponential_edge(vdd=1.8, tau=0.2e-9, n=2000):
    t = np.linspace(0, 2e-9, n)
    return Waveform(t, vdd * (1 - np.exp(-t / tau)))


def linear_edge(vdd=1.8, tr=0.5e-9, start=0.1e-9, n=2000):
    t = np.linspace(0, 2e-9, n)
    return Waveform(t, np.clip((t - start) * vdd / tr, 0, vdd))


class TestCrossingTime:
    def test_linear_crossing(self):
        w = linear_edge()
        assert crossing_time(w, 0.9) == pytest.approx(0.1e-9 + 0.25e-9, rel=1e-3)

    def test_never_reached(self):
        w = linear_edge()
        with pytest.raises(ValueError, match="never reaches"):
            crossing_time(w, 5.0)

    def test_starts_above_level(self):
        t = np.linspace(0, 1, 10)
        w = Waveform(t, np.ones(10))
        assert crossing_time(w, 0.5) == 0.0


class TestEffectiveRamp:
    def test_recovers_exact_linear_ramp(self):
        w = linear_edge(tr=0.5e-9, start=0.1e-9)
        ramp = extract_effective_ramp(w, 1.8)
        assert ramp.slope == pytest.approx(1.8 / 0.5e-9, rel=1e-3)
        assert ramp.rise_time == pytest.approx(0.5e-9, rel=1e-3)
        assert ramp.start_time == pytest.approx(0.1e-9, rel=1e-2)

    def test_exponential_edge_slope(self):
        """20-80% slope of vdd(1-e^{-t/tau})."""
        tau = 0.2e-9
        w = exponential_edge(tau=tau)
        ramp = extract_effective_ramp(w, 1.8)
        t20 = -tau * np.log(0.8)
        t80 = -tau * np.log(0.2)
        expected = 0.6 * 1.8 / (t80 - t20)
        assert ramp.slope == pytest.approx(expected, rel=1e-2)

    def test_crossings_ordered(self):
        ramp = extract_effective_ramp(exponential_edge(), 1.8)
        assert ramp.low_crossing < ramp.high_crossing

    def test_voltage_evaluation_clamped(self):
        ramp = extract_effective_ramp(linear_edge(), 1.8)
        assert ramp.voltage(0.0, 1.8) == 0.0
        assert ramp.voltage(5e-9, 1.8) == 1.8
        mid = ramp.start_time + 0.5 * ramp.rise_time
        assert ramp.voltage(mid, 1.8) == pytest.approx(0.9, rel=1e-2)

    def test_custom_fractions(self):
        w = exponential_edge()
        wide = extract_effective_ramp(w, 1.8, 0.1, 0.9)
        narrow = extract_effective_ramp(w, 1.8, 0.4, 0.6)
        # The exponential decelerates: a wider window sees a slower slope.
        assert wide.slope < narrow.slope

    def test_invalid_fractions(self):
        w = linear_edge()
        with pytest.raises(ValueError):
            extract_effective_ramp(w, 1.8, 0.8, 0.2)
        with pytest.raises(ValueError):
            extract_effective_ramp(w, 1.8, 0.0, 0.8)
