"""Tests for per-driver input skew in the driver-bank harness."""

import dataclasses

import pytest

from repro.analysis import DriverBankSpec, build_driver_bank, simulate_ssn
from repro.process import TSMC018

L = 5e-9
TR = 0.5e-9


def spec_with_offsets(offsets, n=None):
    n = len(offsets) if n is None else n
    return DriverBankSpec(
        technology=TSMC018,
        n_drivers=n,
        inductance=L,
        rise_time=TR,
        input_offsets=tuple(offsets),
    )


class TestSpecValidation:
    def test_offset_count_must_match(self):
        with pytest.raises(ValueError, match="entries"):
            spec_with_offsets((0.0, TR), n=3)

    def test_negative_offsets_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spec_with_offsets((0.0, -1e-10))

    def test_driver_names_explicit_with_offsets(self):
        spec = spec_with_offsets((0.0, TR))
        assert spec.driver_names() == ["M1", "M2"]


class TestBuild:
    def test_per_driver_sources(self):
        circuit = build_driver_bank(spec_with_offsets((0.0, TR, 2 * TR)))
        names = {el.name for el in circuit.elements}
        assert {"Vin1", "Vin2", "Vin3", "M1", "M2", "M3"} <= names
        assert "Vin" not in names

    def test_offset_encoded_in_source(self):
        circuit = build_driver_bank(spec_with_offsets((0.0, 2 * TR)))
        shape = circuit.element("Vin2").shape
        assert shape(2 * TR) == pytest.approx(0.0)
        assert shape(3 * TR) == pytest.approx(TSMC018.vdd)


class TestSimulation:
    def test_zero_offsets_match_simultaneous(self):
        skewed = simulate_ssn(spec_with_offsets((0.0, 0.0)))
        simultaneous = simulate_ssn(
            DriverBankSpec(technology=TSMC018, n_drivers=2, inductance=L, rise_time=TR)
        )
        assert skewed.peak_voltage == pytest.approx(simultaneous.peak_voltage, rel=1e-3)

    def test_full_skew_halves_effective_n(self):
        """Two drivers a full ramp apart bounce like one driver."""
        skewed = simulate_ssn(spec_with_offsets((0.0, 2 * TR)))
        single = simulate_ssn(
            DriverBankSpec(technology=TSMC018, n_drivers=1, inductance=L, rise_time=TR)
        )
        assert skewed.peak_voltage == pytest.approx(single.peak_voltage, rel=0.05)

    def test_skew_reduces_noise(self):
        together = simulate_ssn(spec_with_offsets((0.0, 0.0, 0.0, 0.0)))
        apart = simulate_ssn(spec_with_offsets((0.0, TR, 2 * TR, 3 * TR)))
        assert apart.peak_voltage < 0.5 * together.peak_voltage
