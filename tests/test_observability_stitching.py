"""Cross-process span stitching through the parallel map.

Worker processes trace into their own tracer; their spans ship back with
the results and re-parent under the dispatching ``parallel_map`` span.  The
exactly-once guarantee is the point under test: every task appears in the
stitched trace once — when it ran in a pool worker, when the pool broke and
was respawned, and when the map finally degraded to the serial path.
"""

import pytest

from repro.analysis.parallel import parallel_map_traced
from repro.observability import metrics as obs_metrics
from repro.observability import trace
from repro.testing import faults


@pytest.fixture(autouse=True)
def _clean_state():
    faults.clear_faults()
    trace.disable_tracing()
    obs_metrics.disable_metrics()
    yield
    faults.clear_faults()
    trace.disable_tracing()
    obs_metrics.disable_metrics()


def _traced_double(x):
    """Module-level (picklable) worker: two nested spans and a counter."""
    with trace.span("work_task", index=x):
        with trace.span("work_inner"):
            pass
    obs_metrics.inc("repro_test_tasks_total")
    return 2 * x


def _span_index(tracer):
    by_name = {}
    for sp in tracer.spans:
        by_name.setdefault(sp.name, []).append(sp)
    return by_name


class TestPoolStitching:
    def test_two_workers_every_task_span_exactly_once(self):
        tracer = trace.enable_tracing()
        registry = obs_metrics.enable_metrics()
        results, used_pool = parallel_map_traced(
            _traced_double, range(4), max_workers=2
        )
        assert results == [0, 2, 4, 6]
        assert used_pool is True

        by_name = _span_index(tracer)
        (pm,) = by_name["parallel_map"]
        assert pm.attributes["used_pool"] is True

        tasks = by_name["work_task"]
        assert sorted(sp.attributes["index"] for sp in tasks) == [0, 1, 2, 3]
        assert all(sp.parent_id == pm.span_id for sp in tasks)
        # Worker spans carry the worker pid prefix, so stitched ids can
        # never collide with parent-side ids.
        parent_prefix = pm.span_id.split(".", 1)[0]
        assert all(
            sp.span_id.split(".", 1)[0] != parent_prefix for sp in tasks
        )

        inners = by_name["work_inner"]
        assert len(inners) == 4
        task_ids = {sp.span_id for sp in tasks}
        assert all(sp.parent_id in task_ids for sp in inners)

        all_ids = [sp.span_id for sp in tracer.spans]
        assert len(all_ids) == len(set(all_ids)) == 9
        # Rebasing sanity: adopted spans live on this process's timeline.
        assert all(sp.duration is not None and sp.duration >= 0
                   for sp in tracer.spans)
        assert all(pm.start <= sp.start <= pm.end for sp in tasks)

        assert registry.get("repro_test_tasks_total").value == 4

    def test_worker_metrics_merge_without_tracing(self):
        registry = obs_metrics.enable_metrics()
        results, used_pool = parallel_map_traced(
            _traced_double, range(4), max_workers=2
        )
        assert results == [0, 2, 4, 6] and used_pool
        assert registry.get("repro_test_tasks_total").value == 4
        assert trace.active_tracer() is None


class TestBrokenPoolStitching:
    def test_respawn_then_serial_keeps_spans_exactly_once(self):
        """A worker killed on task 0 breaks the pool on every attempt; the
        map degrades to serial.  Spans from the dead attempts die with
        their results, so each task still appears exactly once — now
        parented directly under the parallel_map span, with the breakage
        recorded as span events."""
        faults.install_faults("worker:task=0")
        tracer = trace.enable_tracing()
        registry = obs_metrics.enable_metrics()
        with pytest.warns(RuntimeWarning, match="process pool broke"):
            results, used_pool = parallel_map_traced(
                _traced_double, range(4), max_workers=2
            )
        assert results == [0, 2, 4, 6]
        assert used_pool is False

        by_name = _span_index(tracer)
        (pm,) = by_name["parallel_map"]
        assert pm.attributes["used_pool"] is False
        event_names = [ev["name"] for ev in pm.events]
        assert event_names.count("broken_process_pool") >= 1
        assert event_names.count("pool_degraded_to_serial") == 1

        tasks = by_name["work_task"]
        assert sorted(sp.attributes["index"] for sp in tasks) == [0, 1, 2, 3]
        # Serial recompute ran in this process, inside the map span.
        assert all(sp.parent_id == pm.span_id for sp in tasks)
        parent_prefix = pm.span_id.split(".", 1)[0]
        assert all(
            sp.span_id.split(".", 1)[0] == parent_prefix for sp in tasks
        )
        assert len(by_name["work_inner"]) == 4

        assert registry.get("repro_test_tasks_total").value == 4
        assert registry.get("repro_pool_degradations_total").value == 1
