"""Property-based tests for the design helpers and baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SenthinathanSsnModel, SongSsnModel, VemuruSsnModel
from repro.core import (
    AlphaPowerSsnParameters,
    AsdmParameters,
    InductiveSsnModel,
    SquareLawSsnParameters,
    figure_for_noise_budget,
    max_simultaneous_drivers,
    peak_noise_from_figure,
    required_rise_time,
)

params_st = st.builds(
    AsdmParameters,
    k=st.floats(1e-3, 0.05),
    v0=st.floats(0.3, 0.9),
    lam=st.floats(1.0, 1.3),
)


class TestDesignInverses:
    @settings(max_examples=50)
    @given(params=params_st, budget_frac=st.floats(0.05, 0.8))
    def test_budget_inverse_roundtrip(self, params, budget_frac):
        vdd = 1.8
        supremum = (vdd - params.v0) / params.lam
        budget = budget_frac * supremum
        z = figure_for_noise_budget(budget, params, vdd)
        assert peak_noise_from_figure(z, params, vdd) == pytest.approx(budget, rel=1e-6)

    @settings(max_examples=40)
    @given(params=params_st, budget_frac=st.floats(0.1, 0.8), tr=st.floats(0.1e-9, 2e-9))
    def test_max_drivers_is_maximal(self, params, budget_frac, tr):
        vdd, l = 1.8, 5e-9
        budget = budget_frac * (vdd - params.v0) / params.lam
        n = max_simultaneous_drivers(budget, params, l, vdd, tr)
        if n >= 1:
            assert InductiveSsnModel(params, n, l, vdd, tr).peak_voltage() <= budget * (1 + 1e-9)
        assert InductiveSsnModel(params, n + 1, l, vdd, tr).peak_voltage() > budget * (1 - 1e-9)

    @settings(max_examples=40)
    @given(params=params_st, budget_frac=st.floats(0.1, 0.8), n=st.integers(1, 64))
    def test_required_rise_time_is_exact(self, params, budget_frac, n):
        vdd, l = 1.8, 5e-9
        budget = budget_frac * (vdd - params.v0) / params.lam
        tr = required_rise_time(budget, params, n, l, vdd)
        peak = InductiveSsnModel(params, n, l, vdd, tr).peak_voltage()
        assert peak == pytest.approx(budget, rel=1e-6)


class TestBaselineProperties:
    alpha_st = st.builds(
        AlphaPowerSsnParameters,
        b=st.floats(1e-3, 0.02),
        vth=st.floats(0.3, 0.8),
        alpha=st.floats(1.0, 2.0),
    )

    @settings(max_examples=40)
    @given(ap=alpha_st, n=st.integers(1, 32), tr=st.floats(0.1e-9, 2e-9))
    def test_vemuru_bounded_and_positive(self, ap, n, tr):
        m = VemuruSsnModel(ap, n, 5e-9, 1.8, tr)
        v = m.peak_voltage()
        assert 0.0 < v < m.time_constant * m.slope + 1e-12

    @settings(max_examples=40)
    @given(ap=alpha_st, n=st.integers(1, 32), tr=st.floats(0.1e-9, 2e-9))
    def test_song_root_within_overdrive(self, ap, n, tr):
        v = SongSsnModel(ap, n, 5e-9, 1.8, tr).peak_voltage()
        assert 0.0 <= v < 1.8 - ap.vth

    @settings(max_examples=40)
    @given(
        beta=st.floats(1e-3, 0.05),
        vth=st.floats(0.3, 0.8),
        n=st.integers(1, 64),
        tr=st.floats(0.1e-9, 2e-9),
    )
    def test_senthinathan_bounded(self, beta, vth, n, tr):
        sq = SquareLawSsnParameters(beta=beta, vth=vth)
        v = SenthinathanSsnModel(sq, n, 5e-9, 1.8, tr).peak_voltage()
        assert 0.0 < v < 1.8 - vth

    @settings(max_examples=30)
    @given(ap=alpha_st, tr=st.floats(0.1e-9, 2e-9))
    def test_baselines_monotone_in_n(self, ap, tr):
        for cls in (VemuruSsnModel, SongSsnModel):
            peaks = [cls(ap, n, 5e-9, 1.8, tr).peak_voltage() for n in (1, 4, 16)]
            assert peaks[0] <= peaks[1] <= peaks[2]
