"""Unit tests for the observability package.

Covers the span tree (nesting, detail levels, sampling, caps), the metrics
registry (types, merge compatibility with ``SolverTelemetry``), the
exporters (Chrome trace schema, Prometheus text, timeline summaries), the
atomic-write helper, the phase-timing/span-timing equivalence contract,
and the CLI flags that wire everything together.
"""

import dataclasses
import json
import math
import os
import time

import pytest

from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.simulate import simulate_ssn, simulate_ssn_cache_clear
from repro.cli import main
from repro.observability import (
    MetricsRegistry,
    atomic_write,
    atomic_write_json,
    to_chrome_trace,
    to_prometheus_text,
    timeline_summary,
    validate_chrome_trace,
)
from repro.observability import metrics as obs_metrics
from repro.observability import trace
from repro.observability.export import spans_from_chrome_trace, summarize_trace_file
from repro.spice.telemetry import SolverTelemetry


@pytest.fixture(autouse=True)
def _observability_off():
    """Never leak a tracer/registry into (or out of) a test."""
    trace.disable_tracing()
    obs_metrics.disable_metrics()
    yield
    trace.disable_tracing()
    obs_metrics.disable_metrics()


def _spec(tech, n=1):
    return DriverBankSpec(
        technology=tech, n_drivers=n, inductance=1e-9, rise_time=0.5e-9
    )


class TestSpanTree:
    def test_nesting_and_parent_ids(self):
        tracer = trace.enable_tracing()
        with trace.span("campaign", kind="sweep") as root:
            assert trace.current_span_id() == root.span_id
            with trace.span("chunk", chunk=0) as child:
                assert child.parent_id == root.span_id
                with trace.span("task") as grandchild:
                    assert grandchild.parent_id == child.span_id
        assert trace.current_span_id() is None
        names = [sp.name for sp in tracer.spans]
        assert names == ["task", "chunk", "campaign"]  # completion order
        assert root.attributes["kind"] == "sweep"
        assert all(sp.duration >= 0 for sp in tracer.spans)

    def test_span_ids_unique_and_pid_prefixed(self):
        tracer = trace.enable_tracing()
        with trace.span("a"):
            pass
        with trace.span("a"):
            pass
        ids = [sp.span_id for sp in tracer.spans]
        assert len(set(ids)) == 2
        assert all(sp_id.startswith(f"{os.getpid():x}.") for sp_id in ids)

    def test_exception_records_error_attribute(self):
        tracer = trace.enable_tracing()
        with pytest.raises(ValueError):
            with trace.span("task"):
                raise ValueError("boom")
        (sp,) = tracer.spans
        assert sp.attributes["error"] == "ValueError: boom"
        assert sp.end is not None

    def test_events_are_timestamped(self):
        tracer = trace.enable_tracing()
        with trace.span("chunk") as sp:
            sp.add_event("bulk_attempt_failed", attempt=1)
        (sp,) = tracer.spans
        (ev,) = sp.events
        assert ev["name"] == "bulk_attempt_failed"
        assert ev["attempt"] == 1
        assert sp.start <= ev["t"] <= sp.end


class TestDisabledMode:
    def test_span_returns_shared_noop(self):
        sp = trace.span("anything", level="full", n=3)
        assert sp is trace.NOOP_SPAN
        with sp as inner:
            inner.set_attribute("k", 1)  # must not raise
            inner.add_event("e")
        assert sp.recorded is False and sp.duration is None
        assert trace.active_tracer() is None

    def test_metric_helpers_are_noops(self):
        obs_metrics.inc("repro_anything_total")
        obs_metrics.observe("repro_step_seconds", 1e-12)
        obs_metrics.set_gauge("repro_depth", 3)
        assert obs_metrics.active_registry() is None
        assert obs_metrics.snapshot_metrics() is None


class TestDetailLevels:
    def test_coarser_tracer_noops_finer_spans(self):
        tracer = trace.enable_tracing(detail="newton")
        assert tracer.wants("phase") and tracer.wants("newton")
        assert not tracer.wants("full")
        assert trace.span("assembly", level="full") is trace.NOOP_SPAN
        with trace.span("newton_solve", level="newton"):
            pass
        assert [sp.name for sp in tracer.spans] == ["newton_solve"]

    def test_unknown_detail_rejected(self):
        with pytest.raises(ValueError, match="unknown detail"):
            trace.enable_tracing(detail="verbose")


class TestSampling:
    def test_sample_zero_records_nothing_but_keeps_structure(self):
        tracer = trace.enable_tracing(sample=0.0)
        with trace.span("root") as root:
            assert root.recorded is False
            with trace.span("child") as child:
                # Children inherit the root's decision: whole trees only.
                assert child.recorded is False
                assert child.parent_id == root.span_id
        assert tracer.spans == []

    def test_sampling_is_seed_deterministic(self):
        def rooted_keeps(seed):
            tracer = trace.enable_tracing(sample=0.5, seed=seed)
            for _ in range(32):
                with trace.span("root"):
                    pass
            return [sp.name for sp in tracer.spans]

        keeps = rooted_keeps(7)
        assert keeps == rooted_keeps(7)
        assert 0 < len(keeps) < 32

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError, match="sample"):
            trace.enable_tracing(sample=1.5)


class TestMaxSpans:
    def test_cap_counts_drops(self):
        tracer = trace.enable_tracing(max_spans=2)
        for _ in range(5):
            with trace.span("s"):
                pass
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3


class TestElapsed:
    def test_closed_span_duration_is_the_phase_time(self):
        trace.enable_tracing()
        start = time.perf_counter()
        with trace.span("stepping") as sp:
            pass
        assert trace.elapsed(sp, start) == sp.duration

    def test_noop_span_falls_back_to_perf_counter(self):
        start = time.perf_counter()
        value = trace.elapsed(trace.NOOP_SPAN, start)
        assert 0 <= value < 1.0


class TestStitchingSerialization:
    def test_snapshot_adopt_reparents_roots_only(self):
        trace.enable_tracing()
        with trace.span("task", index=3) as task:
            with trace.span("inner"):
                pass
        payload = trace.snapshot_spans()
        assert [item["name"] for item in payload] == ["inner", "task"]
        trace.disable_tracing()

        parent = trace.enable_tracing()
        with trace.span("parallel_map") as pm:
            adopted = trace.adopt_spans(payload, parent_id=pm.span_id)
        assert adopted == 2
        by_name = {sp.name: sp for sp in parent.spans if sp.name != "parallel_map"}
        # The payload root is re-parented; the child keeps its real parent.
        assert by_name["task"].parent_id == pm.span_id
        assert by_name["inner"].parent_id == task.span_id
        assert by_name["task"].attributes["index"] == 3
        assert by_name["task"].duration >= 0

    def test_adopt_without_tracer_is_a_noop(self):
        assert trace.adopt_spans([{"name": "x"}], parent_id=None) == 0


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("repro_retries_total").inc()
        reg.counter("repro_retries_total").inc(2)
        assert reg.get("repro_retries_total").value == 3
        with pytest.raises(ValueError):
            reg.counter("repro_retries_total").inc(-1)

        reg.gauge("repro_depth").set(4)
        assert reg.get("repro_depth").value == 4.0

        hist = reg.histogram("repro_newton_iterations_per_solve")
        for it in (1, 2, 3, 9, 100):
            hist.observe(it)
        assert hist.count == 5 and hist.sum == 115
        hist.observe(math.nan)  # ignored, not propagated
        assert hist.count == 5

    def test_labels_key_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("repro_engine_selected_total", labels={"engine": "batch"}).inc()
        reg.counter("repro_engine_selected_total", labels={"engine": "scalar"}).inc(2)
        assert reg.get("repro_engine_selected_total", {"engine": "batch"}).value == 1
        assert reg.get("repro_engine_selected_total", {"engine": "scalar"}).value == 2

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("repro_x_total")

    def test_merge_matches_telemetry_merge(self):
        """record_telemetry(a) ⊕ record_telemetry(b) == record(a.merge(b))."""
        a = SolverTelemetry(newton_iterations=10, retries=1)
        a.add_phase_seconds("stepping", 0.5)
        b = SolverTelemetry(newton_iterations=4, degradations=2)
        b.add_phase_seconds("stepping", 0.25)

        left = MetricsRegistry()
        left.record_telemetry(a)
        right = MetricsRegistry()
        right.record_telemetry(b)
        left.merge(right)

        merged_tel = SolverTelemetry.aggregate([a, b])
        expected = MetricsRegistry()
        expected.record_telemetry(merged_tel)

        assert left.get("repro_newton_iterations_total").value == \
            expected.get("repro_newton_iterations_total").value == 14
        got = left.get("repro_phase_seconds", {"phase": "stepping"})
        want = expected.get("repro_phase_seconds", {"phase": "stepping"})
        assert got.sum == want.sum == 0.75
        # Counts differ by design: two runs observed vs one merged record.
        assert got.count == 2

    def test_dict_round_trip_and_bucket_mismatch(self):
        reg = MetricsRegistry()
        reg.counter("repro_retries_total").inc(3)
        reg.histogram("repro_step_seconds").observe(1e-12)
        clone = MetricsRegistry().merge_dict(reg.as_dict())
        assert clone.as_dict() == reg.as_dict()

        bad = reg.as_dict()
        other = MetricsRegistry()
        other.histogram("repro_step_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="bucket mismatch"):
            other.merge_dict(bad)

    def test_telemetry_extras_flow_into_counters(self):
        tel = SolverTelemetry()
        tel.extras["future_counter"] = 7
        reg = MetricsRegistry()
        reg.record_telemetry(tel)
        assert reg.get("repro_future_counter_total").value == 7

    def test_quantile_accessor(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_step_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            hist.observe(v)
        # Registry accessor delegates to the histogram's bucket-bound
        # quantile estimate.
        assert reg.quantile("repro_step_seconds", 0.5) == hist.quantile(0.5)
        assert reg.quantile("repro_step_seconds", 0.99) == hist.quantile(0.99)
        # Unknown series is nan, not a KeyError — callers poll optimistically.
        assert math.isnan(reg.quantile("repro_absent_seconds", 0.5))
        reg.counter("repro_x_total").inc()
        with pytest.raises(TypeError, match="histogram"):
            reg.quantile("repro_x_total", 0.5)


class TestPrometheusText:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_retries_total", help="chunk retries").inc(2)
        reg.gauge("repro_depth").set(1)
        hist = reg.histogram("repro_newton_iterations_per_solve")
        hist.observe(1)
        hist.observe(3)
        hist.observe(999)
        text = to_prometheus_text(reg)
        lines = text.splitlines()
        assert "# HELP repro_retries_total chunk retries" in lines
        assert "# TYPE repro_retries_total counter" in lines
        assert "repro_retries_total 2.0" in lines
        assert "# TYPE repro_newton_iterations_per_solve histogram" in lines
        # Buckets are cumulative and end at +Inf == _count.
        assert 'repro_newton_iterations_per_solve_bucket{le="1.0"} 1' in lines
        assert 'repro_newton_iterations_per_solve_bucket{le="4.0"} 2' in lines
        assert 'repro_newton_iterations_per_solve_bucket{le="+Inf"} 3' in lines
        assert "repro_newton_iterations_per_solve_count 3" in lines
        assert text.endswith("\n")

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", labels={"p": 'a"b\\c'}).inc()
        text = to_prometheus_text(reg)
        assert r'p="a\"b\\c"' in text

    def test_export_is_byte_deterministic_across_round_trip(self):
        """Scrape stability contract: the exposition text of a registry and
        of its dict-round-tripped clone are byte-identical — float bucket
        bounds and sample sums render via ``repr`` (shortest exact round
        trip), so a restored registry scrapes the same bytes.
        """
        reg = MetricsRegistry()
        reg.counter("repro_retries_total").inc(3)
        reg.gauge("repro_depth").set(0.1 + 0.2)  # a classic non-exact float
        hist = reg.histogram("repro_step_seconds",
                             buckets=(1e-12, 3.3333333333333335e-1, 2.0))
        for v in (7e-13, 0.1, 0.30000000000000004, 1.9999999999999998):
            hist.observe(v)
        text1 = to_prometheus_text(reg)
        clone = MetricsRegistry().merge_dict(
            json.loads(json.dumps(reg.as_dict())))
        assert to_prometheus_text(clone) == text1
        # The awkward bucket bound survives exactly (repr rendering — the
        # shortest string that parses back to the same double).
        assert f'le="{3.3333333333333335e-1!r}"' in text1


class TestChromeTraceExport:
    def _spans(self):
        tracer = trace.enable_tracing()
        with trace.span("campaign") as sp:
            sp.add_event("resumed")
            with trace.span("chunk", chunk=1):
                pass
        return tracer

    def test_export_validates_and_nests(self):
        tracer = self._spans()
        obj = validate_chrome_trace(to_chrome_trace(tracer.spans, tracer))
        complete = [ev for ev in obj["traceEvents"] if ev["ph"] == "X"]
        assert {ev["name"] for ev in complete} == {"campaign", "chunk"}
        by_name = {ev["name"]: ev for ev in complete}
        assert by_name["chunk"]["args"]["parent_id"] == \
            by_name["campaign"]["args"]["span_id"]
        assert by_name["chunk"]["args"]["chunk"] == 1
        assert min(ev["ts"] for ev in complete) == 0.0  # rebased to origin
        instants = [ev for ev in obj["traceEvents"] if ev["ph"] == "i"]
        assert [ev["name"] for ev in instants] == ["resumed"]
        assert obj["otherData"]["schema"] == "repro-trace-1"

    def test_validator_rejects_corruption(self):
        tracer = self._spans()
        obj = to_chrome_trace(tracer.spans, tracer)
        dup = json.loads(json.dumps(obj))
        dup["traceEvents"].append(dict(dup["traceEvents"][1]))
        with pytest.raises(ValueError, match="duplicate span id"):
            validate_chrome_trace(dup)

        orphan = json.loads(json.dumps(obj))
        for ev in orphan["traceEvents"]:
            if ev["ph"] == "X" and ev["args"].get("parent_id"):
                ev["args"]["parent_id"] = "dead.beef"
        with pytest.raises(ValueError, match="unknown parent"):
            validate_chrome_trace(orphan)

        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_round_trip_through_file(self, tmp_path):
        tracer = self._spans()
        spans = spans_from_chrome_trace(to_chrome_trace(tracer.spans, tracer))
        assert {sp.name for sp in spans} == {"campaign", "chunk"}
        roots = [sp for sp in spans if sp.parent_id is None]
        assert [sp.name for sp in roots] == ["campaign"]


class TestTimelineSummary:
    def test_siblings_collapse_by_name(self):
        tracer = trace.enable_tracing()
        with trace.span("stepping"):
            for _ in range(3):
                with trace.span("newton_solve", level="newton", mode="tran"):
                    pass
        text = timeline_summary(tracer.spans)
        assert "newton_solve x3" in text
        assert "mode=tran" in text  # shared attribute surfaces
        assert text.startswith("trace: 4 spans")

    def test_empty_trace(self):
        assert "no spans" in timeline_summary([])

    def test_summarize_trace_file_reports_drops(self, tmp_path):
        tracer = trace.enable_tracing(max_spans=1)
        with trace.span("a"):
            pass
        with trace.span("b"):
            pass
        path = tmp_path / "t.json"
        obj = to_chrome_trace(tracer.spans, tracer)
        path.write_text(json.dumps(obj))
        text = summarize_trace_file(path)
        assert "1 spans" in text
        assert "1 spans dropped" in text


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write(path, "first\n")
        atomic_write(path, "second\n")
        assert path.read_text() == "second\n"
        assert os.listdir(tmp_path) == ["out.txt"]  # no temp leftovers

    def test_crash_mid_write_preserves_previous_content(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        atomic_write(path, "intact\n")

        def chunks():
            yield "partial\n"
            raise RuntimeError("injected crash mid write")

        with pytest.raises(RuntimeError, match="mid write"):
            atomic_write(path, chunks())
        assert path.read_text() == "intact\n"
        assert os.listdir(tmp_path) == ["journal.jsonl"]

    def test_json_helper_round_trips(self, tmp_path):
        path = tmp_path / "x.json"
        atomic_write_json(path, {"b": 1, "a": [1, 2]})
        assert json.loads(path.read_text()) == {"b": 1, "a": [1, 2]}
        assert path.read_text().endswith("\n")


class TestPhaseTimingEquivalence:
    def test_phase_seconds_equal_span_durations_when_traced(self, tech018):
        """Satellite contract: one timing source.  With tracing active the
        telemetry's phase wall-clock *is* the span's duration, bit for bit.
        """
        simulate_ssn_cache_clear()
        tracer = trace.enable_tracing(detail="phase")
        tel = simulate_ssn(_spec(tech018)).telemetry
        by_name = {}
        for sp in tracer.spans:
            by_name.setdefault(sp.name, []).append(sp)
        assert tel.phase_seconds["ic"] == by_name["ic"][0].duration
        assert tel.phase_seconds["stepping"] == by_name["stepping"][0].duration
        assert tel.phase_seconds["total"] == by_name["transient"][0].duration

    def test_untraced_phase_seconds_still_populated(self, tech018):
        simulate_ssn_cache_clear()
        tel = simulate_ssn(_spec(tech018)).telemetry
        assert set(tel.phase_seconds) >= {"ic", "stepping", "total"}
        assert all(v >= 0 for v in tel.phase_seconds.values())


class TestCliObservability:
    def test_flags_accepted_on_every_command(self):
        from repro.cli import build_parser

        for argv in (["fit"], ["estimate", "-n", "1"], ["report", "fig1"],
                     ["sweep", "--values", "1"], ["simulate", "-n", "1"]):
            args = build_parser().parse_args(
                argv + ["--trace", "t.json", "--metrics", "m.prom",
                        "--trace-sample", "0.5", "--trace-detail", "full"])
            assert args.trace == "t.json" and args.metrics == "m.prom"
            assert args.trace_sample == 0.5 and args.trace_detail == "full"

    def test_traced_sweep_acceptance(self, tmp_path, capsys):
        """Acceptance: a traced Fig. 3-style sweep exports a valid nested
        Chrome trace plus Prometheus text carrying the Newton-iteration and
        phase-time histograms, and the summarizer reads the file back.
        """
        trace_path = tmp_path / "sweep.trace.json"
        prom_path = tmp_path / "sweep.prom"
        tel_path = tmp_path / "sweep.telemetry.json"
        assert main([
            "sweep", "--values", "1,2", "-l", "1e-9",
            "--trace", str(trace_path), "--trace-detail", "full",
            "--metrics", str(prom_path), "--telemetry-json", str(tel_path),
        ]) == 0
        capsys.readouterr()

        obj = validate_chrome_trace(json.loads(trace_path.read_text()))
        events = {ev["args"]["span_id"]: ev
                  for ev in obj["traceEvents"] if ev["ph"] == "X"}
        newton = [ev for ev in events.values() if ev["name"] == "newton_solve"]
        assert newton, "full-detail trace must carry newton_solve spans"
        chain = []
        ev = newton[-1]
        while ev is not None:
            chain.append(ev["name"])
            parent = ev["args"].get("parent_id")
            ev = events.get(parent) if parent else None
        assert chain[-1] == "campaign"
        assert {"task", "transient", "stepping"} <= set(chain)

        prom = prom_path.read_text()
        assert "repro_newton_iterations_per_solve_bucket" in prom
        assert 'repro_phase_seconds_bucket{phase="stepping"' in prom
        assert "repro_engine_selected_total" in prom

        tel = json.loads(tel_path.read_text())
        assert tel["ok"] is True and tel["newton_iterations"] > 0

        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("trace:")
        assert "newton_solve" in out

    def test_trace_sample_zero_writes_empty_valid_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.json"
        assert main(["fit", "--trace", str(trace_path),
                     "--trace-sample", "0.0"]) == 0
        capsys.readouterr()
        obj = validate_chrome_trace(json.loads(trace_path.read_text()))
        assert [ev for ev in obj["traceEvents"] if ev["ph"] == "X"] == []
        assert main(["trace", "summarize", str(trace_path)]) == 0
        assert "no spans" in capsys.readouterr().out

    def test_telemetry_json_is_written_atomically(self, tmp_path, monkeypatch):
        """The CLI telemetry summary goes through the shared atomic-write
        helper (tempfile + os.replace), not a plain open/write."""
        calls = []
        import repro.cli as cli_mod

        real = cli_mod.atomic_write_json

        def spy(path, payload, **kwargs):
            calls.append(str(path))
            return real(path, payload, **kwargs)

        monkeypatch.setattr(cli_mod, "atomic_write_json", spy)
        tel_path = tmp_path / "tel.json"
        assert main(["fit", "--telemetry-json", str(tel_path)]) == 0
        assert calls == [str(tel_path)]
        assert json.loads(tel_path.read_text())["ok"] is True

    def test_cli_leaves_observability_disabled(self, tmp_path, capsys):
        assert main(["fit", "--trace", str(tmp_path / "t.json"),
                     "--metrics", str(tmp_path / "m.prom")]) == 0
        capsys.readouterr()
        assert trace.active_tracer() is None
        assert obs_metrics.active_registry() is None
