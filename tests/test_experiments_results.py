"""Unit tests for experiment result-object logic (synthetic data, no sims)."""

import numpy as np
import pytest

from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.metrics import ErrorSummary
from repro.analysis.sweeps import SweepPoint, SweepResult
from repro.core import AsdmParameters, Table1Case
from repro.experiments.fig3_model_comparison import ESTIMATOR_ORDER, Fig3Result, THIS_WORK
from repro.experiments.fig4_capacitance import Fig4Panel, L_ONLY, WITH_C
from repro.packaging import PGA
from repro.process import TSMC018


def make_point(value, sim, estimates):
    spec = DriverBankSpec(
        technology=TSMC018, n_drivers=max(int(value), 1), inductance=5e-9,
        rise_time=0.5e-9,
    )
    return SweepPoint(value=value, spec=spec, simulated_peak=sim, estimates=estimates)


def summary_for(values):
    return ErrorSummary.from_pairs(values, [1.0] * len(values))


class TestSweepResultHelpers:
    def test_series_extraction(self):
        points = (
            make_point(1, 0.1, {"m": 0.11}),
            make_point(2, 0.2, {"m": 0.18}),
        )
        result = SweepResult(knob="n", points=points)
        assert result.values() == [1.0, 2.0]
        assert result.simulated_peaks() == [0.1, 0.2]
        assert result.estimate_series("m") == [0.11, 0.18]
        assert result.percent_errors("m")[0] == pytest.approx(10.0)
        assert result.estimator_names == ["m"]

    def test_empty_result(self):
        result = SweepResult(knob="n", points=())
        assert result.estimator_names == []


class TestFig3Result:
    def _make(self, summaries):
        points = tuple(
            make_point(n, 0.5, {name: 0.5 for name in ESTIMATOR_ORDER})
            for n in (1, 2)
        )
        return Fig3Result(
            technology_name="tsmc018",
            sweep=SweepResult(knob="n_drivers", points=points),
            summaries=summaries,
        )

    def test_best_estimator_by_mean_abs(self):
        summaries = {name: summary_for([1.2]) for name in ESTIMATOR_ORDER}
        summaries[THIS_WORK] = summary_for([1.01])
        assert self._make(summaries).best_estimator() == THIS_WORK

    def test_report_contains_every_estimator(self):
        summaries = {name: summary_for([1.05]) for name in ESTIMATOR_ORDER}
        text = self._make(summaries).format_report()
        for name in ESTIMATOR_ORDER:
            assert name in text


class TestFig4Panel:
    def test_errors_split_by_region(self):
        points = (
            make_point(1, 1.0, {WITH_C: 1.02, L_ONLY: 0.70}),
            make_point(8, 1.0, {WITH_C: 1.01, L_ONLY: 0.99}),
        )
        panel = Fig4Panel(
            label="test",
            ground=PGA.pin,
            sweep=SweepResult(knob="n_drivers", points=points),
            cases=(Table1Case.UNDERDAMPED_FIRST_PEAK, Table1Case.OVERDAMPED),
        )
        by_region = panel.errors_by_region(L_ONLY)
        assert by_region["under-damped"] == pytest.approx(30.0)
        assert by_region["not-under-damped"] == pytest.approx(1.0)
        assert panel.max_abs_error(WITH_C) == pytest.approx(2.0)


class TestTable1RowMath:
    def test_percent_properties(self):
        from repro.experiments.table1_formulas import CaseConfig, Table1Row
        from repro.core import LcSsnModel

        params = AsdmParameters(k=5e-3, v0=0.6, lam=1.04)
        model = LcSsnModel(params, 8, 5e-9, 1e-12, 1.8, 0.5e-9)
        row = Table1Row(
            config=CaseConfig(Table1Case.OVERDAMPED, 8, 1e-12, 0.5e-9),
            model=model,
            formula_peak=1.05,
            ode_peak=1.0,
            sim_peak=1.0,
            extended_peak=1.02,
            waveform_max_diff=0.0,
        )
        assert row.formula_vs_ode_percent == pytest.approx(5.0)
        assert row.formula_vs_sim_percent == pytest.approx(5.0)
        assert row.extended_vs_sim_percent == pytest.approx(2.0)


class TestPatternResultMath:
    def test_statistical_margin(self):
        from repro.experiments.pattern_statistics import PatternStatisticsResult

        result = PatternStatisticsResult(
            technology_name="tsmc018",
            bus_width=2,
            switch_counts=np.array([0, 1, 2]),
            probabilities=np.array([0.5625, 0.375, 0.0625]),
            peaks=np.array([0.0, 0.1, 0.18]),
            mean_peak=0.05,
            p99_peak=0.18,
            worst_case=0.18,
            sim_checks=((1, 0.1, 0.1),),
        )
        assert result.statistical_margin == pytest.approx(0.0)
        assert "statistical margin" in result.format_report()
