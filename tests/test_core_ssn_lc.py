"""Unit tests for the LC SSN model (paper Section 4, Table 1)."""

import math

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.core import AsdmParameters, DampingRegion, LcSsnModel, Table1Case, critical_capacitance


@pytest.fixture
def params():
    return AsdmParameters(k=5.4e-3, v0=0.60, lam=1.04)


def make(params, n=8, c=1e-12, tr=0.5e-9, l=5e-9, vdd=1.8):
    return LcSsnModel(params, n, l, c, vdd, tr)


def integrate(model, samples=2000):
    lc = model.inductance * model.capacitance
    sol = solve_ivp(
        lambda t, y: [y[1], (model.asymptotic_voltage - y[0]) / lc - 2 * model.decay_rate * y[1]],
        (model.turn_on_time, model.ramp_end_time),
        [0.0, 0.0],
        rtol=1e-11,
        atol=1e-15,
        dense_output=True,
    )
    ts = np.linspace(model.turn_on_time, model.ramp_end_time, samples)
    return ts, sol.sol(ts)[0]


class TestRegions:
    def test_overdamped_at_large_n(self, params):
        assert make(params, n=12).region is DampingRegion.OVERDAMPED

    def test_underdamped_at_small_n(self, params):
        assert make(params, n=1).region is DampingRegion.UNDERDAMPED

    def test_critical_at_exact_capacitance(self, params):
        c_crit = critical_capacitance(params, 8, 5e-9)
        assert make(params, n=8, c=c_crit).region is DampingRegion.CRITICALLY_DAMPED

    def test_damping_ratio_consistency(self, params):
        m = make(params, n=8)
        assert m.damping_ratio == pytest.approx(m.decay_rate / m.natural_frequency)

    def test_ringing_frequency_only_underdamped(self, params):
        with pytest.raises(ValueError):
            _ = make(params, n=12).ringing_frequency
        m = make(params, n=1)
        assert 0 < m.ringing_frequency < m.natural_frequency


class TestCases:
    def test_case_overdamped(self, params):
        assert make(params, n=12).case is Table1Case.OVERDAMPED

    def test_case_critical(self, params):
        c_crit = critical_capacitance(params, 8, 5e-9)
        assert make(params, n=8, c=c_crit).case is Table1Case.CRITICALLY_DAMPED

    def test_case_underdamped_split_by_rise_time(self, params):
        slow = make(params, n=2, tr=0.5e-9)
        fast = make(params, n=2, tr=0.2e-9)
        assert slow.case is Table1Case.UNDERDAMPED_FIRST_PEAK
        assert fast.case is Table1Case.UNDERDAMPED_BOUNDARY

    def test_inequality_26_boundary(self, params):
        """Case 3a iff the first peak time fits inside the window."""
        m = make(params, n=2, tr=0.5e-9)
        assert m.first_peak_time() <= m.window
        m2 = make(params, n=2, tr=0.2e-9)
        assert math.pi / m2.ringing_frequency > m2.window


class TestWaveforms:
    @pytest.mark.parametrize("n,c,tr", [
        (12, 1e-12, 0.5e-9),       # over-damped
        (2, 1e-12, 0.5e-9),        # under-damped, peak inside
        (2, 1e-12, 0.2e-9),        # under-damped, boundary
        (4, 2e-12, 0.5e-9),        # near the boundary region
    ])
    def test_closed_form_matches_ode(self, params, n, c, tr):
        m = make(params, n=n, c=c, tr=tr)
        ts, vn = integrate(m)
        np.testing.assert_allclose(np.asarray(m.voltage(ts)), vn, atol=5e-10)

    def test_critical_closed_form_matches_ode(self, params):
        c_crit = critical_capacitance(params, 8, 5e-9)
        m = make(params, n=8, c=c_crit)
        ts, vn = integrate(m)
        np.testing.assert_allclose(np.asarray(m.voltage(ts)), vn, atol=5e-10)

    def test_initial_conditions(self, params):
        m = make(params, n=8)
        assert m.voltage(m.turn_on_time) == pytest.approx(0.0, abs=1e-15)
        assert m.voltage_derivative(m.turn_on_time) == pytest.approx(0.0, abs=1e-6)

    def test_zero_before_turn_on_nan_after_ramp(self, params):
        m = make(params, n=8)
        assert m.voltage(0.0) == 0.0
        assert np.isnan(m.voltage(m.ramp_end_time * 1.01))

    def test_derivative_positive_definite_overdamped(self, params):
        """The paper's claim for cases 1-2: dVn/dt > 0 on the window."""
        m = make(params, n=12)
        ts = np.linspace(m.turn_on_time * 1.001, m.ramp_end_time, 300)
        assert np.all(np.asarray(m.voltage_derivative(ts)) >= 0)

    def test_derivative_matches_numeric(self, params):
        m = make(params, n=2)
        ts = np.linspace(m.turn_on_time, m.ramp_end_time * 0.99, 200)
        h = 1e-14
        numeric = (np.asarray(m.voltage(ts + h)) - np.asarray(m.voltage(ts - h))) / (2 * h)
        np.testing.assert_allclose(
            np.asarray(m.voltage_derivative(ts)), numeric, rtol=1e-3, atol=1e5
        )


class TestPeak:
    def test_eqn24_first_peak_value(self, params):
        m = make(params, n=2, tr=0.5e-9)
        a, w = m.decay_rate, m.ringing_frequency
        expected = m.asymptotic_voltage * (1 + math.exp(-a * math.pi / w))
        assert m.peak_voltage() == pytest.approx(expected, rel=1e-12)

    def test_first_peak_is_waveform_max(self, params):
        m = make(params, n=2, tr=0.5e-9)
        ts, vn = integrate(m, samples=20000)
        assert m.peak_voltage() == pytest.approx(float(np.max(vn)), rel=1e-6)

    def test_boundary_cases_peak_at_window_end(self, params):
        for m in (make(params, n=12), make(params, n=2, tr=0.2e-9)):
            assert m.peak_time() == m.ramp_end_time
            assert m.peak_voltage() == pytest.approx(
                float(m.voltage(m.ramp_end_time)), rel=1e-9
            )

    def test_peak_time_of_first_peak(self, params):
        m = make(params, n=2, tr=0.5e-9)
        assert m.peak_time() == pytest.approx(
            m.turn_on_time + math.pi / m.ringing_frequency
        )

    def test_underdamped_peak_exceeds_asymptote(self, params):
        """Ringing overshoots Vss — the physics behind the paper's warning."""
        m = make(params, n=2, tr=0.5e-9)
        assert m.peak_voltage() > m.asymptotic_voltage

    def test_lc_approaches_l_only_for_small_c(self, params):
        """As C -> 0 the LC boundary value approaches the Eqn 7 result."""
        from repro.core import InductiveSsnModel

        l_only = InductiveSsnModel(params, 12, 5e-9, 1.8, 0.5e-9).peak_voltage()
        lc = make(params, n=12, c=1e-16).peak_voltage()
        assert lc == pytest.approx(l_only, rel=1e-3)


class TestPostRampExtension:
    def test_continuous_at_ramp_end(self, params):
        m = make(params, n=2, tr=0.2e-9)
        v_end = float(m.voltage(m.ramp_end_time))
        assert float(m.post_ramp_voltage(m.ramp_end_time)) == pytest.approx(v_end, rel=1e-9)

    def test_extended_peak_at_least_table1(self, params):
        for m in (make(params, n=12), make(params, n=2), make(params, n=2, tr=0.2e-9)):
            assert m.peak_voltage_extended() >= m.peak_voltage() - 1e-15

    def test_case3b_extended_peak_exceeds_boundary(self, params):
        """The physical maximum lands after the ramp in case 3b."""
        m = make(params, n=2, tr=0.2e-9)
        assert m.case is Table1Case.UNDERDAMPED_BOUNDARY
        assert m.peak_voltage_extended() > 1.05 * m.peak_voltage()

    def test_post_ramp_decays_to_zero(self, params):
        # Over-damped: the slow mode decays at |s1| = a - sqrt(a^2 - w0^2),
        # much slower than a itself, so size the horizon to that mode.
        m = make(params, n=8)
        a, w0 = m.decay_rate, m.natural_frequency
        slow = a - np.sqrt(a**2 - w0**2)
        far = m.ramp_end_time + 40.0 / slow
        assert abs(float(m.post_ramp_voltage(far))) < 1e-9

    def test_post_ramp_matches_ode_continuation(self, params):
        m = make(params, n=2, tr=0.2e-9)
        lc = m.inductance * m.capacitance
        ve = float(m.voltage(m.ramp_end_time))
        vpe = float(m.voltage_derivative(m.ramp_end_time))
        sol = solve_ivp(
            lambda t, y: [y[1], -y[0] / lc - 2 * m.decay_rate * y[1]],
            (0.0, 1e-9),
            [ve, vpe],
            rtol=1e-11,
            atol=1e-15,
            dense_output=True,
        )
        taus = np.linspace(0, 1e-9, 500)
        np.testing.assert_allclose(
            np.asarray(m.post_ramp_voltage(m.ramp_end_time + taus)),
            sol.sol(taus)[0],
            atol=1e-9,
        )


class TestValidation:
    def test_rejects_bad_arguments(self, params):
        with pytest.raises(ValueError):
            make(params, n=0)
        with pytest.raises(ValueError):
            make(params, c=0.0)
        with pytest.raises(ValueError):
            make(params, tr=-1e-9)
        with pytest.raises(ValueError):
            make(params, vdd=0.5)
