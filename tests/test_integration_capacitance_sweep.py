"""Integration tests for E17: the ground-capacitance sweep."""

import pytest

from repro.experiments import capacitance_sweep


@pytest.fixture(scope="module")
def result():
    return capacitance_sweep.run(c_over_crit=(0.3, 1.0, 2.0, 8.0))


class TestCapacitanceSweep:
    def test_peak_rises_past_critical(self, result):
        """Crossing C_crit under-damps and raises the simulated peak."""
        below = result.points[0].simulated_peak
        above = result.points[2].simulated_peak
        assert above > 1.05 * below

    def test_worst_case_capacitance_is_interior(self):
        wide = capacitance_sweep.run(c_over_crit=(0.2, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0))
        assert wide.model_has_interior_maximum()

    def test_extended_model_accurate_everywhere(self, result):
        """The post-ramp extension holds across the whole damping arc."""
        assert result.max_abs_extended_error() < 4.0

    def test_table1_fails_only_in_deep_case_3b(self, result):
        for point in result.points:
            if point.case_name != "UNDERDAMPED_BOUNDARY":
                assert abs(point.percent_error) < 4.0

    def test_case_progression(self, result):
        names = [p.case_name for p in result.points]
        assert names[0] == "OVERDAMPED"
        assert names[1] == "CRITICALLY_DAMPED"
        assert "UNDERDAMPED" in names[-1]

    def test_report_renders(self, result):
        text = result.format_report()
        assert "Worst capacitance" in text
        assert "C_crit" in text
