"""Unit tests for the golden short-channel (BSIM-like) device model."""

import numpy as np
import pytest

from repro.devices import BsimLikeMosfet, BsimLikeParameters


@pytest.fixture
def dev():
    return BsimLikeMosfet(BsimLikeParameters())


class TestThreshold:
    def test_body_effect_raises_threshold(self, dev):
        assert dev.threshold(vbs=-0.5) > dev.threshold(vbs=0.0)

    def test_dibl_lowers_threshold(self, dev):
        assert dev.threshold(vds=1.8) < dev.threshold(vds=0.0)

    def test_zero_bias_value(self, dev):
        assert dev.threshold() == pytest.approx(dev.params.vth0, abs=1e-12)


class TestOverdrive:
    def test_strong_inversion_limit(self, dev):
        vgs = dev.params.vth0 + 0.8
        vgst = vgs - float(dev.threshold())
        assert float(dev.effective_overdrive(vgs)) == pytest.approx(vgst, rel=1e-3)

    def test_subthreshold_positive_and_small(self, dev):
        eff = float(dev.effective_overdrive(0.0))
        assert 0.0 < eff < 0.05

    def test_smooth_and_monotone(self, dev):
        vg = np.linspace(0, 1.8, 200)
        eff = dev.effective_overdrive(vg)
        assert np.all(np.diff(eff) > 0)


class TestCurrent:
    def test_positive_above_threshold(self, dev):
        assert dev.ids(1.2, 1.8) > 0.0

    def test_subthreshold_negligible_but_positive(self, dev):
        tiny = dev.ids(0.1, 1.8)
        strong = dev.ids(1.8, 1.8)
        assert 0.0 < tiny < 1e-3 * strong

    def test_monotone_in_vgs(self, dev):
        vg = np.linspace(0.0, 1.8, 100)
        ids = dev.ids(vg, 1.8)
        assert np.all(np.diff(ids) > 0)

    def test_monotone_in_vds(self, dev):
        vds = np.linspace(0.0, 1.8, 100)
        ids = dev.ids(1.8, vds)
        assert np.all(np.diff(ids) > 0)  # CLM keeps it strictly increasing

    def test_velocity_saturation_sublinear_alpha(self, dev):
        """Effective alpha well below 2: the short-channel signature."""
        p = dev.params
        i1 = dev.ids(p.vth0 + 0.6, 1.8)
        i2 = dev.ids(p.vth0 + 1.2, 1.8)
        alpha_eff = np.log(i2 / i1) / np.log(2.0)
        assert 1.0 < alpha_eff < 1.6

    def test_width_scaling(self):
        lo = BsimLikeMosfet(BsimLikeParameters(w=10e-6))
        hi = BsimLikeMosfet(BsimLikeParameters(w=25e-6))
        assert hi.ids(1.5, 1.8) == pytest.approx(2.5 * lo.ids(1.5, 1.8), rel=1e-12)

    def test_antisymmetric_in_vds(self, dev):
        """Source/drain swap: relabeling the terminals flips the sign only.

        Physical bias: s=0, d=0.4, g=1.5, b=0.  Relabeled with the 0.4 V
        node as "source": vgs=1.1, vds=-0.4, vbs=-0.4.
        """
        forward = dev.ids(1.5, 0.4, 0.0)
        backward = dev.ids(1.1, -0.4, -0.4)
        assert backward == pytest.approx(-forward, rel=1e-9)

    def test_continuous_through_vds_zero(self, dev):
        eps = 1e-7
        assert abs(dev.ids(1.5, eps) - dev.ids(1.5, -eps)) < 1e-6

    def test_smooth_derivatives_for_newton(self, dev):
        """Central-difference gm/gds finite and positive over a bias grid."""
        for vgs in (0.3, 0.6, 1.0, 1.8):
            for vds in (0.05, 0.5, 1.8):
                op = dev.partials(vgs, vds)
                assert np.isfinite([op.ids, op.gm, op.gds, op.gmbs]).all()
                assert op.gm >= 0.0
                assert op.gds >= 0.0


class TestSourceSensitivity:
    """The ASDM premise: raising the source costs more than 1x in gate drive."""

    def test_lambda_exceeds_one(self, dev):
        vdd = 1.8
        h = 0.05
        # Id at absolute (Vg, Vs) with bulk tied to source.
        def current(vg, vs):
            return dev.ids(vg - vs, vdd - vs, 0.0)

        dvg = (current(1.5 + h, 0.0) - current(1.5 - h, 0.0)) / (2 * h)
        dvs = (current(1.5, 0.3 + h) - current(1.5, 0.3 - h)) / (2 * h)
        lam = -dvs / dvg
        assert lam > 1.0


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            BsimLikeParameters(w=0.0)
        with pytest.raises(ValueError):
            BsimLikeParameters(ec=-1.0)
        with pytest.raises(ValueError):
            BsimLikeParameters(delta=0.0)

    def test_scaled_copy(self):
        base = BsimLikeParameters()
        wide = base.scaled(w=123e-6)
        assert wide.w == 123e-6
        assert wide.vth0 == base.vth0
        assert base.w != 123e-6
