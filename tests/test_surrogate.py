"""The surrogate tier: fit, validity routing, engine wiring, persistence.

The serving contract under test: an in-region query is answered purely
from the fitted closed forms (zero Newton solves, ``surrogate_hits``
tagged), anything the model cannot vouch for — out-of-box, wrong
topology, explicit solver options, a blown error bound — routes to the
full engines *bit-identically* to calling them directly, and the fitted
model survives a JSON round trip through the service store unchanged.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis.driver_bank import DriverBankSpec
from repro.analysis.engine import ENGINES, degradation_rungs
from repro.analysis.simulate import simulate_many, simulate_ssn
from repro.process import get_technology
from repro.service import ResultStore, surrogate_key
from repro.service.store import surrogate_from_record, surrogate_record
from repro.surrogate import (
    REGIONS_BY_TOPOLOGY,
    SurrogateModel,
    SurrogateRegistry,
    ValidityRegion,
    default_registry,
    fit_surrogate,
    topology_signature,
    training_specs,
)

#: A small, cheap training box used by most tests (8 corners + center).
BOX = dict(n_drivers=(2, 6), inductance=(2e-9, 5e-9), rise_time=(0.4e-9, 0.7e-9))


@pytest.fixture(scope="module")
def model():
    """One fitted L-only surrogate shared by the module (fits are golden sims)."""
    return fit_surrogate("tsmc018", **BOX)


@pytest.fixture()
def tech():
    return get_technology("tsmc018")


def in_region_spec(tech, **overrides):
    knobs = dict(n_drivers=4, inductance=3e-9, rise_time=0.5e-9)
    knobs.update(overrides)
    return DriverBankSpec(technology=tech, **knobs)


class TestTopologySignature:
    def test_shapes(self, tech):
        assert topology_signature(in_region_spec(tech)) == "l"
        assert topology_signature(in_region_spec(tech, capacitance=10e-12)) == "lc"
        assert topology_signature(in_region_spec(tech, resistance=0.5)) == "l+r"
        spec = in_region_spec(
            tech, n_drivers=2, capacitance=10e-12, input_offsets=(0.0, 1e-11))
        assert topology_signature(spec) == "lc+skew"


class TestValidityRegion:
    def test_bounds_round_trip(self):
        region = ValidityRegion.from_bounds(
            n_drivers=(2, 6), inductance=(2e-9, 5e-9))
        assert region.bounds() == {
            "n_drivers": (2.0, 6.0), "inductance": (2e-9, 5e-9)}

    def test_check_inside_and_outside(self, tech):
        region = ValidityRegion.from_bounds(**BOX)
        assert region.check(in_region_spec(tech)) is None
        reason = region.check(in_region_spec(tech, n_drivers=40))
        assert reason is not None and reason.startswith("validity-box: n_drivers")

    def test_guard_widens_the_box(self, tech):
        strict = ValidityRegion.from_bounds(**BOX)
        guarded = ValidityRegion.from_bounds(guard=0.25, **BOX)
        spec = in_region_spec(tech, n_drivers=7)  # one past the 6-driver edge
        assert strict.check(spec) is not None
        assert guarded.check(spec) is None  # 0.25 * (6 - 2) = 1 driver slack

    def test_payload_round_trip(self):
        region = ValidityRegion.from_bounds(guard=0.1, **BOX)
        assert ValidityRegion.from_payload(region.as_payload()) == region

    def test_invalid_interval_and_guard_raise(self):
        with pytest.raises(ValueError):
            ValidityRegion.from_bounds(n_drivers=(6, 2))
        with pytest.raises(ValueError):
            ValidityRegion.from_bounds(guard=-0.1, n_drivers=(2, 6))


class TestFit:
    def test_fit_records_tight_error_bound(self, model):
        assert model.key == ("tsmc018", "l", "first_order")
        assert model.operating_region == "first_order"
        assert model.n_training == 9  # 2^3 corners + center
        assert 0 < model.error.max_abs_percent <= model.tolerance_percent

    def test_in_region_answer_tracks_golden(self, model, tech):
        spec = in_region_spec(tech)
        answer = model.answer(spec)
        golden = simulate_ssn(spec)
        err = abs(answer.peak_voltage - golden.peak_voltage) / golden.peak_voltage
        assert err * 100 <= model.tolerance_percent
        assert answer.error_bound_percent == model.error.max_abs_percent

    def test_calibration_tightens_the_bound(self):
        raw = fit_surrogate("tsmc018", calibrate=False, **BOX)
        calibrated = fit_surrogate("tsmc018", **BOX)
        assert calibrated.error.max_abs_percent <= raw.error.max_abs_percent

    def test_payload_round_trip_is_exact(self, model):
        payload = json.loads(json.dumps(model.as_payload()))
        assert SurrogateModel.from_payload(payload) == model

    def test_wrong_schema_version_refuses_to_load(self, model):
        payload = model.as_payload()
        payload["surrogate_schema"] = 999
        with pytest.raises(ValueError, match="schema"):
            SurrogateModel.from_payload(payload)

    def test_training_grid_is_corners_plus_center(self, tech, model):
        specs = training_specs(
            tech, model.region, capacitance_knob=False,
            driver_strength=1.0, load_capacitance=10e-12)
        assert len(specs) == 9
        counts = {s.n_drivers for s in specs}
        assert counts == {2, 4, 6}

    def test_fit_rejects_surrogate_engine_and_thin_grids(self):
        with pytest.raises(ValueError, match="full engine"):
            fit_surrogate("tsmc018", engine="surrogate", **BOX)
        with pytest.raises(ValueError, match="samples_per_knob"):
            fit_surrogate("tsmc018", samples_per_knob=1, **BOX)

    def test_lc_box_straddling_damping_regions_raises(self):
        with pytest.raises(ValueError, match="straddles damping regions"):
            fit_surrogate("tsmc018", capacitance=(1e-12, 100e-12), **BOX)


class TestRefusals:
    def test_options_always_refuse(self, model, tech):
        from repro.spice.transient import TransientOptions

        reason = model.validate(in_region_spec(tech), options=TransientOptions())
        assert reason.startswith("options:")

    def test_out_of_box_refuses(self, model, tech):
        reason = model.validate(in_region_spec(tech, n_drivers=40))
        assert reason.startswith("validity-box:")

    def test_template_mismatch_refuses(self, model, tech):
        reason = model.validate(in_region_spec(tech, driver_strength=2.0))
        assert reason.startswith("template:")

    def test_blown_error_bound_refuses_everything(self, model, tech):
        strict = dataclasses.replace(model, tolerance_percent=1e-6)
        reason = strict.validate(in_region_spec(tech))
        assert reason.startswith("error-bound:")

    def test_wrong_technology_refuses(self, model):
        spec = in_region_spec(get_technology("tsmc025"))
        assert model.validate(spec).startswith("technology:")


class TestRegistry:
    def test_hit_miss_refusal_routing(self, model, tech):
        registry = SurrogateRegistry()
        hit, reason = registry.lookup(in_region_spec(tech))
        assert hit is None and reason is None  # empty registry: a miss
        registry.register(model)
        hit, reason = registry.lookup(in_region_spec(tech))
        assert hit is model and reason is None
        hit, reason = registry.lookup(in_region_spec(tech, n_drivers=40))
        assert hit is None and reason.startswith("validity-box:")

    def test_unsupported_topology_is_a_miss(self, model, tech):
        registry = SurrogateRegistry()
        registry.register(model)
        hit, reason = registry.lookup(in_region_spec(tech, resistance=0.5))
        assert hit is None and reason is None


class TestSurrogateEngine:
    """simulate_many(engine="surrogate"): the new top rung of the ladder."""

    @pytest.fixture(autouse=True)
    def registered(self, model):
        registry = default_registry()
        registry.clear()
        registry.register(model)
        yield registry
        registry.clear()

    def test_ladder_names(self):
        assert ENGINES == ("auto", "batch", "scalar", "surrogate")
        assert degradation_rungs("surrogate") == ("scalar", "legacy")

    def test_in_region_hit_does_zero_solver_work(self, model, tech):
        [sim] = simulate_many([in_region_spec(tech)], engine="surrogate")
        assert sim.telemetry.extras.get("surrogate_hits") == 1
        assert sim.telemetry.newton_iterations == 0
        assert sim.peak_voltage == pytest.approx(
            model.answer(in_region_spec(tech)).peak_voltage)

    def test_out_of_region_falls_back_bit_identically(self, tech):
        spec = in_region_spec(tech, n_drivers=40)
        [sim] = simulate_many([spec], engine="surrogate")
        assert sim.telemetry.extras.get("surrogate_refusals") == 1
        direct = simulate_ssn(spec)
        assert sim.ssn.max_abs_difference(direct.ssn) <= 1e-9
        assert sim.peak_voltage == direct.peak_voltage

    def test_miss_falls_back_and_tags_misses(self, tech):
        default_registry().clear()
        spec = in_region_spec(tech)
        [sim] = simulate_many([spec], engine="surrogate")
        assert sim.telemetry.extras.get("surrogate_misses") == 1
        direct = simulate_ssn(spec)
        assert sim.ssn.max_abs_difference(direct.ssn) <= 1e-9

    def test_mixed_batch_partitions_per_spec(self, tech):
        specs = [in_region_spec(tech), in_region_spec(tech, n_drivers=40)]
        sims = simulate_many(specs, engine="surrogate")
        assert sims[0].telemetry.extras.get("surrogate_hits") == 1
        assert sims[1].telemetry.extras.get("surrogate_refusals") == 1

    def test_auto_never_resolves_to_surrogate(self, tech):
        [sim] = simulate_many([in_region_spec(tech)], engine="auto")
        assert "surrogate_hits" not in sim.telemetry.extras


class TestPersistence:
    def test_store_round_trip(self, model, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = surrogate_key(model.technology, model.topology,
                            model.operating_region)
        store.put_surrogate(key, model)
        assert store.get_surrogate(key) == model

    def test_get_missing_or_wrong_kind_is_none(self, model, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.get_surrogate("0" * 64) is None

    def test_record_round_trip(self, model):
        record = surrogate_record("k" * 64, model)
        assert record["kind"] == "surrogate"
        assert surrogate_from_record(record) == model

    def test_surrogate_key_is_deterministic_identity(self):
        a = surrogate_key("tsmc018", "l", "first_order")
        assert a == surrogate_key("tsmc018", "l", "first_order")
        assert a != surrogate_key("tsmc018", "lc", "underdamped")
        assert len(a) == 64

    def test_iter_records_filters_by_kind(self, model, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = surrogate_key(model.technology, model.topology,
                            model.operating_region)
        store.put_surrogate(key, model)
        kinds = [r["kind"] for r in store.iter_records(kind="surrogate")]
        assert kinds == ["surrogate"]
        assert list(store.iter_records(kind="simulate")) == []


class TestRegionsByTopology:
    def test_supported_regions(self):
        assert REGIONS_BY_TOPOLOGY["l"] == ("first_order",)
        assert set(REGIONS_BY_TOPOLOGY["lc"]) == {
            "overdamped", "critically_damped", "underdamped"}
