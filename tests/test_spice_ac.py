"""Unit tests for the AC small-signal analysis."""

import numpy as np
import pytest

from repro.devices import BsimLikeMosfet
from repro.spice import Circuit, Dc, ac_analysis, driving_point_impedance


class TestPassiveNetworks:
    def test_rc_lowpass_magnitude_and_phase(self):
        c = Circuit()
        c.vsource("Vin", "in", "0", Dc(0.0))
        c.resistor("R1", "in", "out", 1e3)
        c.capacitor("C1", "out", "0", 1e-12)
        fc = 1 / (2 * np.pi * 1e3 * 1e-12)
        res = ac_analysis(c, [fc], "Vin", bias_time=None)
        assert res.magnitude("out")[0] == pytest.approx(1 / np.sqrt(2), rel=1e-9)
        assert res.phase("out")[0] == pytest.approx(-np.pi / 4, rel=1e-9)

    def test_rl_highpass(self):
        c = Circuit()
        c.vsource("Vin", "in", "0", Dc(0.0))
        c.resistor("R1", "in", "out", 100.0)
        c.inductor("L1", "out", "0", 10e-9)
        fc = 100.0 / (2 * np.pi * 10e-9)
        res = ac_analysis(c, [fc / 100, fc, fc * 100], "Vin", bias_time=None)
        mag = res.magnitude("out")
        assert mag[0] < 0.05
        assert mag[1] == pytest.approx(1 / np.sqrt(2), rel=1e-6)
        assert mag[2] > 0.99

    def test_voltage_divider_flat(self):
        c = Circuit()
        c.vsource("Vin", "in", "0", Dc(0.0))
        c.resistor("R1", "in", "mid", 3e3)
        c.resistor("R2", "mid", "0", 1e3)
        res = ac_analysis(c, np.logspace(6, 10, 5), "Vin", bias_time=None)
        np.testing.assert_allclose(res.magnitude("mid"), 0.25, rtol=1e-12)

    def test_lc_parallel_resonance(self):
        c = Circuit()
        c.inductor("L1", "a", "0", 5e-9)
        c.capacitor("C1", "a", "0", 1e-12)
        c.resistor("R1", "a", "0", 200.0)
        f0 = 1 / (2 * np.pi * np.sqrt(5e-9 * 1e-12))
        freqs = np.logspace(np.log10(f0) - 1, np.log10(f0) + 1, 401)
        z = driving_point_impedance(c, freqs, "a", bias_time=None)
        f_peak = freqs[np.argmax(np.abs(z))]
        assert f_peak == pytest.approx(f0, rel=0.02)
        # At resonance L and C cancel: |Z| = R.
        assert np.max(np.abs(z)) == pytest.approx(200.0, rel=0.01)

    def test_impedance_of_bare_inductor(self):
        c = Circuit()
        c.inductor("L1", "a", "0", 5e-9)
        freqs = np.array([1e9, 2e9])
        z = driving_point_impedance(c, freqs, "a", bias_time=None)
        np.testing.assert_allclose(np.abs(z), 2 * np.pi * freqs * 5e-9, rtol=1e-9)

    def test_mutual_inductance_ac(self):
        """Coupled parallel pair: Z = jw L(1+k)/2."""
        c = Circuit()
        c.inductor("L1", "a", "0", 10e-9)
        c.inductor("L2", "a", "0", 10e-9)
        c.mutual("K1", "L1", "L2", 0.5)
        z = driving_point_impedance(c, [1e9], "a", bias_time=None)
        expected = 2 * np.pi * 1e9 * 10e-9 * 1.5 / 2
        assert abs(z[0]) == pytest.approx(expected, rel=1e-9)

    def test_probe_removed_after_impedance(self):
        c = Circuit()
        c.inductor("L1", "a", "0", 5e-9)
        driving_point_impedance(c, [1e9], "a", bias_time=None)
        assert all(not el.name.startswith("_Z") for el in c.elements)


class TestLinearizedDevices:
    def test_common_source_gain(self):
        """Low-frequency gain of a resistively loaded common-source stage."""
        c = Circuit()
        c.vsource("Vdd", "vdd", "0", Dc(1.8))
        c.vsource("Vg", "g", "0", Dc(1.0))
        c.resistor("Rd", "vdd", "d", 2e3)
        dev = BsimLikeMosfet()
        c.mosfet("M1", "d", "g", "0", "0", dev)
        res = ac_analysis(c, [1e6], "Vg", bias_time=0.0)
        gain = res.magnitude("d")[0]

        from repro.spice import dc_operating_point

        op_point = dc_operating_point(c)
        vd = op_point.voltage("d")
        op = dev.partials(1.0, vd, 0.0)
        expected = op.gm / (1 / 2e3 + op.gds)
        assert gain == pytest.approx(expected, rel=1e-3)

    def test_unknown_stimulus_rejected(self):
        c = Circuit()
        c.resistor("R1", "a", "0", 1e3)
        with pytest.raises(KeyError):
            ac_analysis(c, [1e9], "Vnope", bias_time=None)

    def test_nonpositive_frequency_rejected(self):
        c = Circuit()
        c.vsource("Vin", "a", "0", Dc(0.0))
        c.resistor("R1", "a", "0", 1e3)
        with pytest.raises(ValueError):
            ac_analysis(c, [0.0], "Vin", bias_time=None)
