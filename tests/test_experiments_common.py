"""Unit tests for experiment plumbing (common helpers, caching, CLI glue)."""

import pytest

from repro.experiments.common import (
    NOMINAL_GROUND,
    NOMINAL_RISE_TIME,
    FittedModels,
    fitted_models,
    format_table,
)


class TestFittedModelsCache:
    def test_same_instance_returned(self):
        a = fitted_models("tsmc018")
        b = fitted_models("tsmc018")
        assert a is b

    def test_strength_is_part_of_key(self):
        a = fitted_models("tsmc018", 1.0)
        b = fitted_models("tsmc018", 2.0)
        assert a is not b
        assert b.asdm.k == pytest.approx(2 * a.asdm.k, rel=0.02)

    def test_all_three_fits_present(self):
        models = fitted_models("tsmc018")
        assert isinstance(models, FittedModels)
        assert models.asdm.k > 0
        assert models.alpha_power.b > 0
        assert models.square_law.beta > 0

    def test_reports_attached(self):
        models = fitted_models("tsmc018")
        assert models.asdm_report.n_points > 0
        assert models.alpha_power_report.max_relative_error < 0.05

    def test_unknown_technology(self):
        with pytest.raises(KeyError):
            fitted_models("tsmc090")


class TestNominals:
    def test_paper_package_values(self):
        assert NOMINAL_GROUND.inductance == pytest.approx(5e-9)
        assert NOMINAL_GROUND.capacitance == pytest.approx(1e-12)
        assert NOMINAL_RISE_TIME == pytest.approx(0.5e-9)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_header_separator(self):
        text = format_table(["col"], [["x"]])
        assert "---" in text

    def test_wide_cells_stretch_columns(self):
        text = format_table(["h"], [["wide-cell-value"]])
        assert "wide-cell-value" in text
