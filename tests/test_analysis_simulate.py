"""Unit tests for simulation defaults and result packaging."""

import dataclasses
import math

import pytest

from repro.analysis import DriverBankSpec, default_stop_time, default_time_step, simulate_ssn
from repro.process import TSMC018


@pytest.fixture
def l_only_spec():
    return DriverBankSpec(
        technology=TSMC018, n_drivers=2, inductance=5e-9, rise_time=0.5e-9
    )


@pytest.fixture
def lc_spec(l_only_spec):
    return dataclasses.replace(l_only_spec, capacitance=1e-12)


class TestDefaults:
    def test_l_only_step_from_ramp(self, l_only_spec):
        assert default_time_step(l_only_spec) == pytest.approx(0.5e-9 / 400)

    def test_lc_step_resolves_ringing(self, lc_spec):
        ring = 2 * math.pi * math.sqrt(5e-9 * 1e-12)
        expected = min(0.5e-9 / 400, ring / 80)
        assert default_time_step(lc_spec) == pytest.approx(expected)

    def test_big_capacitance_slows_nothing(self, l_only_spec):
        """A huge C means a long ring period: the ramp sets the step."""
        slow = dataclasses.replace(l_only_spec, capacitance=1e-6)
        assert default_time_step(slow) == pytest.approx(0.5e-9 / 400)

    def test_stop_time_covers_ramp_twice(self, l_only_spec):
        assert default_stop_time(l_only_spec) == pytest.approx(1.0e-9)

    def test_stop_time_covers_ringing_tail(self, lc_spec):
        ring = 2 * math.pi * math.sqrt(5e-9 * 1e-12)
        assert default_stop_time(lc_spec) >= 0.5e-9 + 1.5 * ring

    def test_stop_time_extends_for_skew(self, l_only_spec):
        skewed = dataclasses.replace(
            l_only_spec, input_offsets=(0.0, 2e-9)
        )
        assert default_stop_time(skewed) >= default_stop_time(l_only_spec) + 2e-9


class TestResultPackaging:
    @pytest.fixture(scope="class")
    def sim(self):
        spec = DriverBankSpec(
            technology=TSMC018, n_drivers=3, inductance=5e-9, rise_time=0.5e-9
        )
        return simulate_ssn(spec)

    def test_waveforms_share_time_grid(self, sim):
        assert len(sim.ssn) == len(sim.inductor_current)
        assert len(sim.ssn) == len(sim.output_voltage)

    def test_driver_current_is_per_driver(self, sim):
        """Collapsed banks report one driver's share of the current."""
        t = 0.45e-9
        total = sim.inductor_current.value_at(t)
        per_driver = sim.driver_current.value_at(t)
        assert per_driver == pytest.approx(total / 3, rel=0.05)

    def test_input_is_the_ramp(self, sim):
        assert sim.input_voltage.value_at(0.25e-9) == pytest.approx(0.9, rel=1e-6)

    def test_peak_fields_consistent(self, sim):
        t, v = sim.ssn.peak()
        assert sim.peak_voltage == v
        assert sim.peak_time == t
