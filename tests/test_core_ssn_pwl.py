"""Unit tests for the piecewise-linear-drive SSN model (extension)."""

import numpy as np
import pytest

from repro.core import AsdmParameters, InductiveSsnModel, PwlDriveSsnModel


@pytest.fixture
def params():
    return AsdmParameters(k=5.4e-3, v0=0.60, lam=1.04)


def ramp_knots(vdd=1.8, tr=0.5e-9, hold=1.0e-9, n=500):
    """Knots of an ideal ramp followed by a flat hold."""
    t = np.linspace(0.0, tr + hold, n)
    v = np.clip(t * vdd / tr, 0.0, vdd)
    return t, v


class TestIdealRampConsistency:
    def test_matches_eqn6_waveform(self, params):
        t, v = ramp_knots()
        pwl = PwlDriveSsnModel(params, 8, 5e-9, t, v)
        ideal = InductiveSsnModel(params, 8, 5e-9, 1.8, 0.5e-9)
        ts = np.linspace(0.25e-9, 0.499e-9, 20)
        np.testing.assert_allclose(
            np.asarray(pwl.voltage(ts)), np.asarray(ideal.voltage(ts)), rtol=2e-3
        )

    def test_matches_eqn7_peak(self, params):
        t, v = ramp_knots(n=2000)
        pwl = PwlDriveSsnModel(params, 8, 5e-9, t, v)
        ideal = InductiveSsnModel(params, 8, 5e-9, 1.8, 0.5e-9)
        assert pwl.peak_voltage() == pytest.approx(ideal.peak_voltage(), rel=1e-3)

    def test_turn_on_time(self, params):
        t, v = ramp_knots(n=2000)
        pwl = PwlDriveSsnModel(params, 8, 5e-9, t, v)
        sr = 1.8 / 0.5e-9
        assert pwl.turn_on_time == pytest.approx(params.v0 / sr, rel=1e-3)


class TestGeneralDrive:
    def test_flat_tail_decays(self, params):
        t, v = ramp_knots(tr=0.3e-9, hold=5e-9)
        pwl = PwlDriveSsnModel(params, 8, 5e-9, t, v)
        late = float(pwl.voltage(5e-9))
        assert late < 0.05 * pwl.peak_voltage()

    def test_peak_at_end_of_rise_for_monotone_ramp(self, params):
        t, v = ramp_knots(tr=0.5e-9, n=1000)
        pwl = PwlDriveSsnModel(params, 8, 5e-9, t, v)
        assert pwl.peak_time() == pytest.approx(0.5e-9, abs=5e-12)

    def test_two_slope_drive(self, params):
        """A fast-then-slow ramp peaks at the slope change or the top."""
        t = np.array([0.0, 0.2e-9, 1.2e-9, 2.0e-9])
        v = np.array([0.0, 1.4, 1.8, 1.8])
        pwl = PwlDriveSsnModel(params, 8, 5e-9, t, v)
        # Compare against dense numeric integration of the same ODE.
        from scipy.integrate import solve_ivp

        tau = pwl.time_constant
        nlk = 8 * 5e-9 * params.k

        def slope(time):
            return float(np.interp(time, t[:-1] + 1e-15, np.diff(v) / np.diff(t)))

        def rhs(time, y):
            s = np.interp(time, 0.5 * (t[:-1] + t[1:]), np.diff(v) / np.diff(t))
            # piecewise-constant slope lookup consistent with the model
            idx = np.searchsorted(t, time, side="right") - 1
            idx = min(max(idx, 0), len(t) - 2)
            s = (v[idx + 1] - v[idx]) / (t[idx + 1] - t[idx])
            return [(nlk * s - y[0]) / tau]

        sol = solve_ivp(rhs, (pwl.turn_on_time, 2.0e-9), [0.0],
                        rtol=1e-10, atol=1e-14, dense_output=True, max_step=1e-11)
        ts = np.linspace(pwl.turn_on_time, 2.0e-9, 300)
        np.testing.assert_allclose(
            np.asarray(pwl.voltage(ts)), sol.sol(ts)[0], atol=2e-4
        )

    def test_zero_before_turn_on(self, params):
        t, v = ramp_knots()
        pwl = PwlDriveSsnModel(params, 8, 5e-9, t, v)
        assert pwl.voltage(pwl.turn_on_time * 0.5) == 0.0

    def test_on_state_check(self, params):
        t, v = ramp_knots()
        pwl = PwlDriveSsnModel(params, 8, 5e-9, t, v)
        assert not pwl.on_state_violated(1.8)

    def test_query_past_last_knot_clamps_to_final_segment(self, params):
        """Regression: the segment lookup must clamp its *upper* bound.

        ``searchsorted(..., 'right') - 1`` returns ``len(knots) - 1`` for
        times at or past the final knot — one past the last segment — so
        an unclamped lookup reads stale coefficients.  Far-future queries
        must evaluate the final flat-tail segment (exponential decay
        toward its asymptote), identically for scalars and arrays.
        """
        t, v = ramp_knots(tr=0.3e-9, hold=2e-9)
        pwl = PwlDriveSsnModel(params, 8, 5e-9, t, v)
        t_end = t[-1]
        # Scalar queries at and beyond the final knot are finite and decay.
        at_end = float(pwl.voltage(t_end))
        beyond = float(pwl.voltage(t_end + 5e-9))
        far = float(pwl.voltage(t_end + 50e-9))
        assert np.isfinite(at_end) and np.isfinite(beyond) and np.isfinite(far)
        assert abs(beyond) <= abs(at_end)
        assert abs(far) <= abs(beyond)
        # The tail continues the last segment's solution smoothly: a point
        # just inside and just outside the final knot must nearly agree
        # (up to the genuine exponential decay over 2*eps).
        eps = 1e-15
        inside = float(pwl.voltage(t_end - eps))
        outside = float(pwl.voltage(t_end + eps))
        assert outside == pytest.approx(inside, rel=1e-4)
        # Array queries mixing in-range and far-future times match the
        # scalar path element-wise.
        ts = np.array([0.2e-9, t_end, t_end + 5e-9, t_end + 50e-9])
        arr = np.asarray(pwl.voltage(ts))
        scalars = np.array([float(pwl.voltage(x)) for x in ts])
        np.testing.assert_allclose(arr, scalars, rtol=0, atol=0)


class TestValidation:
    def test_gate_never_turning_on(self, params):
        t = np.linspace(0, 1e-9, 10)
        with pytest.raises(ValueError, match="turn-on"):
            PwlDriveSsnModel(params, 8, 5e-9, t, np.full(10, 0.2))

    def test_bad_knots(self, params):
        with pytest.raises(ValueError):
            PwlDriveSsnModel(params, 8, 5e-9, [0.0, 0.0], [0.0, 1.8])
        with pytest.raises(ValueError):
            PwlDriveSsnModel(params, 8, 5e-9, [0.0], [1.8])
        with pytest.raises(ValueError):
            PwlDriveSsnModel(params, 0, 5e-9, [0.0, 1e-9], [0.0, 1.8])
