"""Unit tests for technology cards."""

import dataclasses

import pytest

from repro.devices import BsimLikeParameters
from repro.process import TSMC018, Technology, get_technology, list_technologies


class TestRegistry:
    def test_three_nodes_registered(self):
        assert list_technologies() == ["tsmc018", "tsmc025", "tsmc035"]

    def test_lookup_roundtrip(self):
        for name in list_technologies():
            assert get_technology(name).name == name

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="tsmc018"):
            get_technology("tsmc013")


class TestCards:
    def test_supply_scales_with_node(self):
        vdds = [get_technology(n).vdd for n in ("tsmc018", "tsmc025", "tsmc035")]
        assert vdds == [1.8, 2.5, 3.3]

    def test_nmos_length_matches_node(self):
        for name in list_technologies():
            tech = get_technology(name)
            assert tech.nmos.l == tech.node

    def test_device_factory_width(self):
        dev = TSMC018.nmos_device(42e-6)
        assert dev.params.w == 42e-6

    def test_default_width_is_reference(self):
        assert TSMC018.nmos_device().params.w == TSMC018.reference_width

    def test_driver_strength_scaling(self):
        dev = TSMC018.driver_device(2.5)
        assert dev.params.w == pytest.approx(2.5 * TSMC018.reference_width)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            TSMC018.nmos_device(0.0)
        with pytest.raises(ValueError):
            TSMC018.driver_device(-1.0)


class TestValidation:
    def test_mismatched_length_rejected(self):
        with pytest.raises(ValueError, match="disagrees"):
            Technology(
                name="bad",
                node=0.25e-6,
                vdd=2.5,
                nmos=BsimLikeParameters(l=0.18e-6),
                reference_width=10e-6,
            )

    def test_nonpositive_vdd_rejected(self):
        with pytest.raises(ValueError):
            Technology(
                name="bad",
                node=0.18e-6,
                vdd=0.0,
                nmos=BsimLikeParameters(),
                reference_width=10e-6,
            )

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            TSMC018.vdd = 2.0
