"""Unit tests for the process-variation Monte Carlo extension."""

import numpy as np
import pytest

from repro.analysis import ParameterSpread, peak_noise_distribution
from repro.core import AsdmParameters


@pytest.fixture
def params():
    return AsdmParameters(k=5.4e-3, v0=0.60, lam=1.04)


class TestDistribution:
    def test_reproducible_with_seed(self, params):
        a = peak_noise_distribution(params, 8, 5e-9, 1.8, 0.5e-9, trials=200, seed=7)
        b = peak_noise_distribution(params, 8, 5e-9, 1.8, 0.5e-9, trials=200, seed=7)
        np.testing.assert_array_equal(a.samples, b.samples)

    def test_different_seeds_differ(self, params):
        a = peak_noise_distribution(params, 8, 5e-9, 1.8, 0.5e-9, trials=200, seed=1)
        b = peak_noise_distribution(params, 8, 5e-9, 1.8, 0.5e-9, trials=200, seed=2)
        assert not np.array_equal(a.samples, b.samples)

    def test_nominal_matches_closed_form(self, params):
        from repro.core import circuit_figure, peak_noise_from_figure

        r = peak_noise_distribution(params, 8, 5e-9, 1.8, 0.5e-9, trials=50)
        z = circuit_figure(8, 5e-9, 1.8 / 0.5e-9)
        assert r.nominal == pytest.approx(peak_noise_from_figure(z, params, 1.8))

    def test_mean_near_nominal(self, params):
        r = peak_noise_distribution(params, 8, 5e-9, 1.8, 0.5e-9, trials=3000)
        assert r.mean == pytest.approx(r.nominal, rel=0.05)

    def test_p95_above_mean(self, params):
        r = peak_noise_distribution(params, 8, 5e-9, 1.8, 0.5e-9, trials=1000)
        assert r.p95 > r.mean
        assert r.guard_band == pytest.approx(r.p95 - r.nominal)

    def test_zero_spread_collapses(self, params):
        spread = ParameterSpread(k_sigma=0.0, v0_sigma=0.0, lam_sigma=0.0)
        r = peak_noise_distribution(params, 8, 5e-9, 1.8, 0.5e-9, spread=spread, trials=50)
        assert r.std == pytest.approx(0.0, abs=1e-12)
        assert r.samples[0] == pytest.approx(r.nominal, rel=1e-9)

    def test_wider_spread_wider_distribution(self, params):
        tight = peak_noise_distribution(
            params, 8, 5e-9, 1.8, 0.5e-9,
            spread=ParameterSpread(k_sigma=0.02), trials=800,
        )
        wide = peak_noise_distribution(
            params, 8, 5e-9, 1.8, 0.5e-9,
            spread=ParameterSpread(k_sigma=0.2), trials=800,
        )
        assert wide.std > tight.std

    def test_validation(self, params):
        with pytest.raises(ValueError):
            peak_noise_distribution(params, 8, 5e-9, 1.8, 0.5e-9, trials=1)
        with pytest.raises(ValueError):
            ParameterSpread(k_sigma=-0.1)
