"""Unit tests for the Circuit netlist builder."""

import pytest

from repro.devices import BsimLikeMosfet
from repro.spice import Circuit, Dc, Ramp


@pytest.fixture
def circuit():
    return Circuit("test")


class TestNodes:
    def test_ground_aliases(self, circuit):
        assert circuit.node("0") == 0
        assert circuit.node("gnd") == 0
        assert circuit.node("GND") == 0

    def test_interning_is_stable(self, circuit):
        a = circuit.node("a")
        assert circuit.node("a") == a

    def test_distinct_nodes_get_distinct_ids(self, circuit):
        assert circuit.node("a") != circuit.node("b")

    def test_node_name_roundtrip(self, circuit):
        nid = circuit.node("out")
        assert circuit.node_name(nid) == "out"

    def test_node_id_unknown_raises(self, circuit):
        with pytest.raises(KeyError):
            circuit.node_id("nope")

    def test_num_nodes_includes_ground(self, circuit):
        circuit.node("a")
        assert circuit.num_nodes == 2


class TestElements:
    def test_constructors_create_elements(self, circuit):
        circuit.resistor("R1", "a", "0", 1e3)
        circuit.capacitor("C1", "a", "0", 1e-12)
        circuit.inductor("L1", "a", "b", 1e-9)
        circuit.vsource("V1", "b", "0", Dc(1.0))
        circuit.isource("I1", "a", "0", Dc(1e-3))
        circuit.mosfet("M1", "a", "b", "0", "0", BsimLikeMosfet())
        assert len(circuit.elements) == 6

    def test_duplicate_names_rejected(self, circuit):
        circuit.resistor("R1", "a", "0", 1e3)
        with pytest.raises(ValueError, match="duplicate"):
            circuit.resistor("R1", "b", "0", 1e3)

    def test_element_lookup(self, circuit):
        r = circuit.resistor("R1", "a", "0", 1e3)
        assert circuit.element("R1") is r
        with pytest.raises(KeyError):
            circuit.element("R2")

    def test_scalar_shape_coerced_to_dc(self, circuit):
        v = circuit.vsource("V1", "a", "0", 2.5)
        assert v.shape(0.0) == 2.5

    def test_invalid_element_values(self, circuit):
        with pytest.raises(ValueError):
            circuit.resistor("R1", "a", "0", 0.0)
        with pytest.raises(ValueError):
            circuit.capacitor("C1", "a", "0", -1e-12)
        with pytest.raises(ValueError):
            circuit.inductor("L1", "a", "0", 0.0)


class TestBreakpoints:
    def test_union_of_source_breakpoints(self, circuit):
        circuit.vsource("V1", "a", "0", Ramp(0, 1, 1e-9, 1e-9))
        circuit.vsource("V2", "b", "0", Ramp(0, 1, 0.5e-9, 1e-9))
        assert circuit.breakpoints() == pytest.approx([0.5e-9, 1e-9, 1.5e-9, 2e-9])

    def test_no_sources_no_breakpoints(self, circuit):
        circuit.resistor("R1", "a", "0", 1e3)
        assert circuit.breakpoints() == []
