"""Convergence-recovery and solver-telemetry tests.

Covers the PR's acceptance criterion — a driver-bank transient seeded to
fail Newton at the default step must complete via automatic step halving
with ``>= 1`` recovered rejection, ``0`` unrecovered failures, and fast
vs. legacy golden parity intact — plus the telemetry record itself
(merge/aggregate semantics, LU-cache counters with the staleness guard,
DC gmin-stepping observability, session aggregation, and the analysis
layer's cross-worker aggregation).
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis.driver_bank import DriverBankSpec, build_driver_bank
from repro.analysis.montecarlo import peak_noise_distribution
from repro.analysis.simulate import aggregate_telemetry, default_stop_time, simulate_ssn
from repro.analysis.sweeps import sweep_driver_count
from repro.spice import Circuit, Dc, Ramp
from repro.spice.dc import dc_operating_point
from repro.spice.mna import MnaSystem
from repro.spice.solver import ConvergenceError
from repro.spice.telemetry import (
    SolverTelemetry,
    disable_session_telemetry,
    enable_session_telemetry,
    record_session,
    session_telemetry,
)
from repro.spice.transient import TransientOptions, transient

#: Fast-path waveforms must stay within this of the seed engine.
PARITY_TOL = 1e-9


@pytest.fixture
def failing_spec(tech018):
    """Fig. 2 bank whose *default step* rejects at least one Newton solve.

    ``dt = rise_time`` with a 5-iteration Newton budget makes the first
    post-breakpoint step jump too far for the damped iteration, so the
    engine must recover by halving (verified by the telemetry assertions).
    """
    return DriverBankSpec(
        technology=tech018,
        n_drivers=3,
        inductance=5e-9,
        rise_time=0.2e-9,
        capacitance=2e-12,
        load_capacitance=10e-12,
        collapse=False,
    )


class TestConvergenceRecovery:
    def test_seeded_newton_failure_recovers_by_step_halving(self, failing_spec):
        """The PR acceptance criterion, fast engine."""
        circuit = build_driver_bank(failing_spec)
        result = transient(
            circuit, default_stop_time(failing_spec), failing_spec.rise_time,
            options=TransientOptions(max_newton=5),
        )
        tel = result.telemetry
        assert tel.step_rejections >= 1
        assert tel.recovered_rejections >= 1
        assert tel.step_retries == tel.step_rejections
        assert tel.unrecovered_failures == 0
        assert tel.accepted_steps == len(result.times) - 1
        assert tel.newton_iterations > tel.newton_solves > 0

    def test_recovery_parity_fast_vs_legacy(self, failing_spec):
        """Both engines reject identically and land on identical waveforms."""
        tstop = default_stop_time(failing_spec)
        dt = failing_spec.rise_time
        fast = transient(build_driver_bank(failing_spec), tstop, dt,
                         options=TransientOptions(max_newton=5))
        ref = transient(build_driver_bank(failing_spec), tstop, dt,
                        options=TransientOptions(max_newton=5, legacy_reference=True))
        assert fast.telemetry.step_rejections == ref.telemetry.step_rejections >= 1
        assert fast.telemetry.unrecovered_failures == 0
        assert ref.telemetry.unrecovered_failures == 0
        assert len(fast.times) == len(ref.times), "step sequences diverged"
        for node in ref.node_names:
            dv = np.max(np.abs(fast.voltage(node).y - ref.voltage(node).y))
            assert dv <= PARITY_TOL, f"node {node}: |dV| = {dv:.3e} V"

    def test_adaptive_mode_also_recovers(self, failing_spec):
        result = transient(
            build_driver_bank(failing_spec), default_stop_time(failing_spec),
            failing_spec.rise_time,
            options=TransientOptions(max_newton=5, adaptive=True),
        )
        assert result.telemetry.unrecovered_failures == 0
        assert result.telemetry.accepted_steps == len(result.times) - 1

    def test_min_dt_floor_makes_failure_unrecoverable(self, failing_spec):
        """With the floor at the base step no halving is allowed: the run
        raises, and the exception carries the partial telemetry."""
        dt = failing_spec.rise_time
        with pytest.raises(ConvergenceError) as excinfo:
            transient(
                build_driver_bank(failing_spec), default_stop_time(failing_spec),
                dt, options=TransientOptions(max_newton=5, min_dt=dt),
            )
        tel = excinfo.value.telemetry
        assert tel is not None
        assert tel.unrecovered_failures == 1
        assert tel.step_rejections >= 1
        assert tel.recovered_rejections == tel.step_rejections - 1
        assert "total" in tel.phase_seconds

    def test_min_dt_must_be_positive(self):
        with pytest.raises(ValueError, match="min_dt"):
            TransientOptions(min_dt=0.0)

    def test_clean_run_reports_no_rejections(self, failing_spec):
        sim = simulate_ssn(failing_spec)  # default (fine) step
        tel = sim.telemetry
        assert tel is not None
        assert tel.step_rejections == 0
        assert tel.unrecovered_failures == 0
        assert tel.newton_iterations > 0
        assert tel.phase_seconds.get("total", 0.0) > 0.0


class TestTelemetryRecord:
    def test_merge_and_aggregate(self):
        a = SolverTelemetry(newton_solves=2, newton_iterations=10,
                            step_rejections=1, step_retries=1)
        a.add_phase_seconds("stepping", 0.5)
        b = SolverTelemetry(newton_solves=3, newton_iterations=5,
                            unrecovered_failures=1)
        b.add_phase_seconds("stepping", 0.25)
        b.add_phase_seconds("ic", 0.1)
        total = SolverTelemetry.aggregate([a, b, None])
        assert total.newton_solves == 5
        assert total.newton_iterations == 15
        assert total.step_rejections == 1
        assert total.unrecovered_failures == 1
        assert total.recovered_rejections == 0
        assert total.phase_seconds["stepping"] == pytest.approx(0.75)
        assert total.phase_seconds["ic"] == pytest.approx(0.1)

    def test_as_dict_is_machine_readable(self):
        tel = SolverTelemetry(step_rejections=2, step_retries=2)
        d = tel.as_dict()
        assert d["ok"] is True
        assert d["recovered_rejections"] == 2
        assert d["phase_seconds"] == {}
        import json
        json.dumps(d)  # must be JSON-serializable as-is
        tel.unrecovered_failures = 1
        assert tel.as_dict()["ok"] is False

    def test_format_report_mentions_key_counters(self):
        tel = SolverTelemetry(newton_solves=4, step_rejections=1, step_retries=1)
        text = tel.format_report()
        assert "rejections" in text
        assert "unrecovered" in text

    def test_pickle_round_trip(self):
        import pickle
        tel = SolverTelemetry(newton_iterations=7, lu_cache_hits=3)
        tel.add_phase_seconds("total", 1.25)
        clone = pickle.loads(pickle.dumps(tel))
        assert clone == tel


class TestForwardCompatExtras:
    """Journals written by a *newer* producer must round-trip losslessly."""

    def test_unknown_numeric_keys_survive_in_extras(self):
        import warnings as _warnings
        from repro.spice import telemetry as tel_mod

        data = SolverTelemetry(newton_solves=2).as_dict()
        data["future_counter"] = 5
        data["future_flag"] = True        # bool is not a counter
        data["future_note"] = "text"      # nor is a string
        tel_mod._warned_extras.discard("future_counter")
        tel_mod._warned_extras.discard("future_flag")
        tel_mod._warned_extras.discard("future_note")
        with pytest.warns(RuntimeWarning, match="future_counter"):
            tel = SolverTelemetry.from_dict(data)
        assert tel.newton_solves == 2
        assert tel.extras == {"future_counter": 5}
        # Warn once per process per counter name, not per journal line.
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            again = SolverTelemetry.from_dict(data)
        assert again.extras == {"future_counter": 5}

    def test_extras_reemitted_at_top_level_and_merged(self):
        a = SolverTelemetry()
        a.extras["future_counter"] = 5
        b = SolverTelemetry()
        b.extras["future_counter"] = 3
        a.merge(b)
        assert a.extras["future_counter"] == 8
        # Round trip hands the newer consumer back its exact counter.
        assert a.as_dict()["future_counter"] == 8


class TestSessionTelemetry:
    def test_disabled_by_default(self):
        assert session_telemetry() is None
        record_session(SolverTelemetry(newton_solves=1))  # must be a no-op
        assert session_telemetry() is None

    def test_transient_runs_accumulate_into_session(self, failing_spec):
        session = enable_session_telemetry()
        try:
            circuit = build_driver_bank(failing_spec)
            transient(circuit, default_stop_time(failing_spec),
                      failing_spec.rise_time, options=TransientOptions(max_newton=5))
            assert session.step_rejections >= 1
            assert session.unrecovered_failures == 0
            before = session.newton_solves
            transient(build_driver_bank(failing_spec), default_stop_time(failing_spec),
                      failing_spec.rise_time, options=TransientOptions(max_newton=5))
            assert session.newton_solves > before
        finally:
            disable_session_telemetry()
        assert session_telemetry() is None

    def test_failed_run_is_recorded_before_raising(self, failing_spec):
        session = enable_session_telemetry()
        try:
            dt = failing_spec.rise_time
            with pytest.raises(ConvergenceError):
                transient(build_driver_bank(failing_spec),
                          default_stop_time(failing_spec), dt,
                          options=TransientOptions(max_newton=5, min_dt=dt))
            assert session.unrecovered_failures == 1
        finally:
            disable_session_telemetry()


class TestLuCacheTelemetryAndStaleness:
    def _linear_circuit(self, r_ohms: float) -> Circuit:
        c = Circuit("rlc")
        c.vsource("Vin", "in", "0", Ramp(0.0, 1.8, 0.1e-9, 0.2e-9))
        c.resistor("R1", "in", "mid", r_ohms)
        c.inductor("L1", "mid", "out", 4e-9, ic=0.0)
        c.capacitor("C1", "out", "0", 3e-12, ic=0.0)
        return c

    def test_linear_transient_counts_hits_and_misses(self):
        result = transient(self._linear_circuit(25.0), 2e-9, 5e-12)
        tel = result.telemetry
        assert tel.lu_cache_hits > 0
        assert tel.lu_cache_misses >= 1
        assert tel.lu_cache_hits + tel.lu_cache_misses == tel.newton_solves
        assert tel.newton_iterations == 0  # direct solves, no Newton loop

    def test_same_key_different_matrix_never_reuses_stale_lu(self):
        """Cross-circuit parity: two different linear systems sharing one
        cache key (the satellite bug) must each get their own solution."""
        pytest.importorskip("scipy")
        system = MnaSystem(self._linear_circuit(25.0))
        n = system.size
        rng = np.random.default_rng(42)
        A1 = rng.normal(size=(n, n)) + n * np.eye(n)
        A2 = rng.normal(size=(n, n)) + n * np.eye(n)  # same shape, same key
        z = rng.normal(size=n)
        key = ("tran", 1e-12, "trap", ())
        x1 = system.solve_linear_cached(key, A1.copy(), z)
        x2 = system.solve_linear_cached(key, A2.copy(), z)
        np.testing.assert_allclose(x1, np.linalg.solve(A1, z), rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(x2, np.linalg.solve(A2, z), rtol=1e-10, atol=1e-12)

    def test_mutated_element_value_invalidates_cached_factors(self):
        """Re-running a reused MnaSystem after mutating an element value
        must not solve against the old circuit's factorization."""
        circuit = self._linear_circuit(25.0)
        tel = SolverTelemetry()
        system = MnaSystem(circuit)
        system.telemetry = tel
        rng = np.random.default_rng(0)
        n = system.size
        A = rng.normal(size=(n, n)) + n * np.eye(n)
        z = rng.normal(size=n)
        key = ("tran", 5e-12, "trap", (True,))
        system.solve_linear_cached(key, A.copy(), z)
        hits_before = tel.lu_cache_hits
        # Same key, perturbed matrix (as a mutated R value would produce).
        A_mut = A.copy()
        A_mut[0, 0] *= 2.0
        x = system.solve_linear_cached(key, A_mut, z)
        np.testing.assert_allclose(x, np.linalg.solve(A_mut, z), rtol=1e-10, atol=1e-12)
        assert tel.lu_cache_hits == hits_before  # reuse was (rightly) refused
        assert tel.lu_cache_invalidations >= 1

    def test_cross_circuit_transients_stay_correct(self):
        """End-to-end: two linear circuits simulated back-to-back give the
        same waveforms as when each is simulated in a fresh process state."""
        r_values = (25.0, 250.0)
        baseline = [
            transient(self._linear_circuit(r), 2e-9, 5e-12) for r in r_values
        ]
        interleaved = [
            transient(self._linear_circuit(r), 2e-9, 5e-12) for r in r_values
        ]
        for base, inter in zip(baseline, interleaved):
            for node in base.node_names:
                np.testing.assert_array_equal(
                    base.voltage(node).y, inter.voltage(node).y
                )


class TestDcTelemetry:
    def _divider(self) -> Circuit:
        c = Circuit("divider")
        c.vsource("V1", "a", "0", Dc(2.0))
        c.resistor("R1", "a", "b", 1000.0)
        c.resistor("R2", "b", "0", 1000.0)
        return c

    def test_direct_solve_records_telemetry(self):
        sol = dc_operating_point(self._divider())
        assert sol.voltage("b") == pytest.approx(1.0)
        assert sol.telemetry.gmin_steps == 0
        assert sol.telemetry.unrecovered_failures == 0
        assert sol.telemetry.phase_seconds.get("dc", 0.0) > 0.0

    def test_gmin_ladder_counts_stages(self, monkeypatch):
        """Force the direct attempt to fail so the continuation ladder runs."""
        import repro.spice.dc as dc_mod

        real = dc_mod.newton_solve
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ConvergenceError("seeded direct-solve failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(dc_mod, "newton_solve", flaky)
        sol = dc_mod.dc_operating_point(self._divider())
        assert sol.voltage("b") == pytest.approx(1.0)
        assert sol.telemetry.gmin_steps >= 2
        assert sol.telemetry.unrecovered_failures == 0

    def test_gmin_ladder_skips_failed_intermediate_stages(self, monkeypatch):
        """An intermediate stage that fails is skipped, not fatal."""
        import repro.spice.dc as dc_mod

        real = dc_mod.newton_solve
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] in (1, 2):  # direct attempt + first ladder stage
                raise ConvergenceError("seeded failure")
            return real(*args, **kwargs)

        monkeypatch.setattr(dc_mod, "newton_solve", flaky)
        sol = dc_mod.dc_operating_point(self._divider())
        assert sol.voltage("b") == pytest.approx(1.0)
        assert sol.telemetry.step_rejections == 1  # the skipped stage
        assert sol.telemetry.unrecovered_failures == 0


class TestAnalysisAggregation:
    def test_sweep_aggregates_point_telemetry_serially(self, tech018):
        base = DriverBankSpec(
            technology=tech018, n_drivers=1, inductance=5e-9, rise_time=0.5e-9
        )
        result = sweep_driver_count(base, [1, 2], {"const": lambda s: 0.2},
                                    max_workers=1)
        tel = result.telemetry
        assert tel.newton_solves > 0
        assert tel.unrecovered_failures == 0
        assert all(p.telemetry is not None for p in result.points)

    def test_sweep_telemetry_survives_process_pool(self, tech018):
        base = DriverBankSpec(
            technology=tech018, n_drivers=1, inductance=5e-9, rise_time=0.35e-9
        )
        counts = [1, 2, 3]
        parallel = sweep_driver_count(base, counts, {}, max_workers=4)
        tel = parallel.telemetry
        # Per-point records must come back across the pickle boundary with
        # real solver work in them, and aggregate cleanly.
        assert all(p.telemetry is not None for p in parallel.points)
        assert tel.newton_solves > 0
        assert tel.newton_iterations > 0
        assert tel.unrecovered_failures == 0

    def test_aggregate_telemetry_over_simulations(self, tech018):
        spec = DriverBankSpec(
            technology=tech018, n_drivers=2, inductance=5e-9, rise_time=0.5e-9
        )
        sims = [simulate_ssn(spec), simulate_ssn(dataclasses.replace(spec, n_drivers=3))]
        total = aggregate_telemetry(sims)
        assert total.newton_solves == sum(s.telemetry.newton_solves for s in sims)

    def test_montecarlo_records_wall_clock(self, asdm018, tech018):
        result = peak_noise_distribution(
            asdm018, n_drivers=4, inductance=5e-9, vdd=tech018.vdd,
            rise_time=0.3e-9, trials=50, seed=3,
        )
        assert result.telemetry is not None
        assert result.telemetry.phase_seconds.get("montecarlo", 0.0) > 0.0
        assert result.telemetry.unrecovered_failures == 0
