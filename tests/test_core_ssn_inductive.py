"""Unit tests for the inductance-only SSN model (paper Eqns 4-10)."""

import numpy as np
import pytest
from scipy.integrate import solve_ivp

from repro.core import AsdmParameters, InductiveSsnModel


@pytest.fixture
def params():
    return AsdmParameters(k=5.4e-3, v0=0.60, lam=1.04)


@pytest.fixture
def model(params):
    return InductiveSsnModel(params, n_drivers=8, inductance=5e-9, vdd=1.8, rise_time=0.5e-9)


class TestDerivedQuantities:
    def test_slope(self, model):
        assert model.slope == pytest.approx(3.6e9)

    def test_turn_on_time(self, model):
        assert model.turn_on_time == pytest.approx(0.6 / 3.6e9)

    def test_time_constant_eqn5(self, model, params):
        assert model.time_constant == pytest.approx(8 * 5e-9 * params.k * params.lam)

    def test_asymptotic_voltage(self, model, params):
        assert model.asymptotic_voltage == pytest.approx(8 * 5e-9 * params.k * 3.6e9)


class TestVoltageWaveform:
    def test_zero_before_turn_on(self, model):
        assert model.voltage(0.0) == 0.0
        assert model.voltage(model.turn_on_time * 0.99) == 0.0

    def test_nan_after_ramp(self, model):
        assert np.isnan(model.voltage(model.rise_time * 1.01))

    def test_matches_numeric_ode(self, model):
        """Eqn (6) vs direct integration of Eqn (5) — must be exact."""
        tau, vss = model.time_constant, model.asymptotic_voltage
        sol = solve_ivp(
            lambda t, y: [(vss - y[0]) / tau],
            (model.turn_on_time, model.rise_time),
            [0.0],
            rtol=1e-11,
            atol=1e-15,
            dense_output=True,
        )
        ts = np.linspace(model.turn_on_time, model.rise_time, 300)
        np.testing.assert_allclose(model.voltage(ts), sol.sol(ts)[0], atol=1e-9)

    def test_monotone_increasing_on_window(self, model):
        ts = np.linspace(model.turn_on_time, model.rise_time, 500)
        assert np.all(np.diff(model.voltage(ts)) > 0)

    def test_scalar_in_scalar_out(self, model):
        assert isinstance(model.voltage(0.3e-9), float)


class TestCurrent:
    def test_current_satisfies_kcl(self, model):
        """Vn = N*L*d(i_total)/dt, the defining Eqn (4)."""
        ts = np.linspace(model.turn_on_time * 1.01, model.rise_time * 0.999, 400)
        i_total = model.total_current(ts)
        didt = np.gradient(i_total, ts)
        vn = model.voltage(ts)
        np.testing.assert_allclose(
            vn[5:-5], model.inductance * didt[5:-5], rtol=1e-3
        )

    def test_current_zero_before_turn_on(self, model):
        assert model.driver_current(0.0) == 0.0

    def test_total_is_n_times_driver(self, model):
        t = 0.4e-9
        assert model.total_current(t) == pytest.approx(8 * model.driver_current(t))


class TestPeak:
    def test_peak_at_ramp_end(self, model):
        assert model.peak_time() == model.rise_time

    def test_peak_equals_waveform_at_end(self, model):
        assert model.peak_voltage() == pytest.approx(
            model.voltage(model.rise_time), rel=1e-12
        )

    def test_peak_below_asymptote(self, model):
        assert model.peak_voltage() < model.asymptotic_voltage

    def test_peak_saturates_for_huge_z(self, params):
        """Eqn 10 saturates at (VDD - V0)/lambda as Z -> infinity."""
        huge = InductiveSsnModel(params, 10000, 5e-9, 1.8, 0.5e-9)
        bound = (1.8 - params.v0) / params.lam
        assert huge.peak_voltage() == pytest.approx(bound, rel=1e-3)
        assert huge.peak_voltage() < bound

    def test_peak_increases_with_n(self, params):
        peaks = [
            InductiveSsnModel(params, n, 5e-9, 1.8, 0.5e-9).peak_voltage()
            for n in (1, 2, 4, 8, 16)
        ]
        assert all(b > a for a, b in zip(peaks, peaks[1:]))

    def test_z_equivalence(self, params):
        """N, L and sr enter the peak only through Z = N*L*sr (Eqn 10)."""
        a = InductiveSsnModel(params, 8, 5e-9, 1.8, 0.5e-9)
        b = InductiveSsnModel(params, 4, 10e-9, 1.8, 0.5e-9)
        c = InductiveSsnModel(params, 16, 5e-9, 1.8, 1.0e-9)
        assert a.peak_voltage() == pytest.approx(b.peak_voltage(), rel=1e-12)
        assert a.peak_voltage() == pytest.approx(c.peak_voltage(), rel=1e-12)


class TestValidation:
    def test_rejects_bad_arguments(self, params):
        with pytest.raises(ValueError):
            InductiveSsnModel(params, 0, 5e-9, 1.8, 0.5e-9)
        with pytest.raises(ValueError):
            InductiveSsnModel(params, 8, 0.0, 1.8, 0.5e-9)
        with pytest.raises(ValueError):
            InductiveSsnModel(params, 8, 5e-9, 1.8, 0.0)

    def test_rejects_vdd_below_v0(self, params):
        with pytest.raises(ValueError, match="never turn on"):
            InductiveSsnModel(params, 8, 5e-9, 0.5, 0.5e-9)
