"""Integration tests for the experiment modules (reduced configurations).

Full-size experiment runs belong to the benchmark harness; these tests run
each experiment at a reduced sweep and assert the paper's qualitative
claims hold on the reduced data.
"""

import numpy as np
import pytest

from repro.core import Table1Case
from repro.experiments import (
    ablations,
    damping_map,
    fig1_iv_fit,
    fig2_waveforms,
    fig3_model_comparison,
    fig4_capacitance,
    table1_formulas,
)


@pytest.fixture(scope="module")
def fig1():
    return fig1_iv_fit.run()


@pytest.fixture(scope="module")
def fig2():
    return fig2_waveforms.run()


@pytest.fixture(scope="module")
def fig3():
    return fig3_model_comparison.run(driver_counts=(2, 8, 16))


@pytest.fixture(scope="module")
def fig4():
    return fig4_capacitance.run(driver_counts=(2, 8, 16))


@pytest.fixture(scope="module")
def table1():
    return table1_formulas.run()


class TestFig1:
    def test_fit_good_in_strong_region(self, fig1):
        assert fig1.report.max_relative_error < 0.06

    def test_v0_above_device_threshold(self, fig1):
        """The paper's 0.61 V vs 0.5 V observation."""
        assert fig1.params.v0 > fig1.device_vth + 0.05

    def test_lambda_above_one(self, fig1):
        assert fig1.params.lam > 1.0

    def test_curves_equally_spaced(self, fig1):
        """Linearity in Vs: adjacent-curve spacings within 15% of each other."""
        spacings = fig1.curve_spacings()
        assert spacings.max() / spacings.min() < 1.15

    def test_modeled_grid_shape(self, fig1):
        assert fig1.modeled.shape == fig1.surface.ids.shape

    def test_report_renders(self, fig1):
        text = fig1.format_report()
        assert "K =" in text and "lambda" in text


class TestFig2:
    def test_current_match_tight(self, fig2):
        assert fig2.current_match.normalized_max_error < 0.06

    def test_ssn_match_reasonable(self, fig2):
        # The turn-on knee carries the worst error (see EXPERIMENTS.md).
        assert fig2.ssn_match.normalized_max_error < 0.20

    def test_late_window_voltage_tight(self, fig2):
        ts = np.linspace(0.3e-9, 0.5e-9 * 0.999, 30)
        diff = np.abs(fig2.model_ssn.value_at(ts) - fig2.simulation.ssn.value_at(ts))
        assert np.max(diff) < 0.07 * fig2.simulation.peak_voltage

    def test_report_renders(self, fig2):
        assert "Fig. 2" in fig2.format_report()


class TestFig3:
    def test_this_work_most_accurate(self, fig3):
        assert fig3.best_estimator() == fig3_model_comparison.THIS_WORK

    def test_this_work_within_five_percent(self, fig3):
        assert fig3.summaries[fig3_model_comparison.THIS_WORK].max_abs_percent < 5.0

    def test_baselines_clearly_worse(self, fig3):
        ours = fig3.summaries[fig3_model_comparison.THIS_WORK].mean_abs_percent
        assert fig3.summaries["vemuru-1996"].mean_abs_percent > 2 * ours
        assert fig3.summaries["song-1999"].mean_abs_percent > 2 * ours

    def test_vemuru_overestimates_song_underestimates(self, fig3):
        assert fig3.summaries["vemuru-1996"].bias_percent > 0
        assert fig3.summaries["song-1999"].bias_percent < 0

    def test_report_renders(self, fig3):
        assert "Most accurate" in fig3.format_report()


class TestFig4:
    def test_l_only_fails_underdamped(self, fig4):
        for panel in fig4.panels:
            by_region = panel.errors_by_region(fig4_capacitance.L_ONLY)
            assert by_region["under-damped"] > 10.0

    def test_l_only_adequate_overdamped(self, fig4):
        panel = fig4.panels[0]
        by_region = panel.errors_by_region(fig4_capacitance.L_ONLY)
        assert by_region["not-under-damped"] < 5.0

    def test_lc_model_good_everywhere(self, fig4):
        for panel in fig4.panels:
            assert panel.max_abs_error(fig4_capacitance.WITH_C) < 7.0

    def test_doubled_pads_shift_crossover(self, fig4):
        """Halving L and doubling C keeps more of the sweep under-damped."""
        def underdamped_count(panel):
            return sum(
                case in (Table1Case.UNDERDAMPED_FIRST_PEAK, Table1Case.UNDERDAMPED_BOUNDARY)
                for case in panel.cases
            )

        assert underdamped_count(fig4.panels[1]) > underdamped_count(fig4.panels[0])

    def test_report_renders(self, fig4):
        assert "ground pads doubled" in fig4.format_report()


class TestTable1:
    def test_all_four_cases_covered(self, table1):
        cases = {row.config.case for row in table1.rows}
        assert cases == set(Table1Case)

    def test_formula_matches_ode_exactly(self, table1):
        for row in table1.rows:
            assert abs(row.formula_vs_ode_percent) < 0.01
            assert row.waveform_max_diff < 1e-9

    def test_formula_close_to_simulation_except_3b(self, table1):
        for row in table1.rows:
            if row.config.case is not Table1Case.UNDERDAMPED_BOUNDARY:
                assert abs(row.formula_vs_sim_percent) < 6.0

    def test_extension_fixes_case_3b(self, table1):
        row = next(
            r for r in table1.rows
            if r.config.case is Table1Case.UNDERDAMPED_BOUNDARY
        )
        assert abs(row.extended_vs_sim_percent) < abs(row.formula_vs_sim_percent)
        assert abs(row.extended_vs_sim_percent) < 4.0


class TestDampingMap:
    def test_quadratic_law(self):
        result = damping_map.run(driver_counts=(1, 2, 4, 8))
        assert result.loglog_slope == pytest.approx(2.0, abs=1e-6)
        for row in result.rows:
            assert row.zeta_at_crit == pytest.approx(1.0, rel=1e-9)
            assert row.overshoot_below <= 1.0 + 1e-9
            assert row.overshoot_above > 1.0


class TestAblations:
    def test_paper_resistance_negligible(self):
        result = ablations.resistance_ablation(resistances=(0.0, 10e-3))
        assert abs(result.percent_shift(1)) < 0.1

    def test_collapse_exact(self):
        result = ablations.collapse_ablation(n_drivers=3)
        assert result.peak_diff_percent < 0.01
        assert result.max_waveform_diff < 1e-6
