# Convenience targets for the reproduction workflow.

PY := PYTHONPATH=src python

.PHONY: install test bench bench-smoke bench-perf campaign-smoke trace-smoke softdep-smoke serve-smoke surrogate-smoke status-smoke reports examples clean

install:
	pip install -e . || python setup.py develop

# Tier-1 suite: the command CI runs and regressions are judged against.
test:
	$(PY) -m pytest -x -q

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only -s

# Perf benchmark in smoke mode: tiny workloads, every engine exercised,
# no timing assertions and no BENCH_perf.json rewrite (CI-safe).
bench-smoke:
	$(PY) -m pytest benchmarks/bench_perf.py -q -s --quick

# Fast-path vs seed-engine perf regression; writes BENCH_perf.json.
bench-perf:
	$(PY) -m pytest benchmarks/bench_perf.py -q -s

# Campaign fault-tolerance smoke: a checkpointed CLI run, then a resumed
# re-run against the same journal (recomputes nothing, must exit 0).
campaign-smoke:
	rm -f campaign_smoke.jsonl
	$(PY) -m repro simulate -n 1,2,3 -l 1e-9 --chunk-size 2 \
	  --checkpoint campaign_smoke.jsonl --telemetry
	$(PY) -m repro simulate -n 1,2,3 -l 1e-9 --chunk-size 2 \
	  --checkpoint campaign_smoke.jsonl --resume
	rm -f campaign_smoke.jsonl

# Observability smoke: a full-detail traced + metered CLI sweep, then
# schema-validate the Chrome trace, read it back through the summarizer,
# and check the Prometheus text carries the key histograms.
trace-smoke:
	rm -f trace_smoke.json metrics_smoke.prom
	$(PY) -m repro sweep --values 1,2 --trace trace_smoke.json \
	  --trace-detail full --metrics metrics_smoke.prom
	$(PY) -c "import json; from repro.observability.export import \
	  validate_chrome_trace; \
	  validate_chrome_trace(json.load(open('trace_smoke.json'))); \
	  print('chrome trace schema ok')"
	$(PY) -m repro trace summarize trace_smoke.json
	$(PY) -c "text = open('metrics_smoke.prom').read(); \
	  assert 'repro_newton_iterations_per_solve_bucket' in text, 'newton histogram missing'; \
	  assert 'repro_phase_seconds_bucket' in text, 'phase histogram missing'; \
	  print('prometheus export ok')"
	rm -f trace_smoke.json metrics_smoke.prom

# Soft-dependency smoke: run the engine with scipy blocked at the import
# machinery and numba disabled, proving the dense/numpy fallbacks of the
# sparse tier, the batched rank-1 lane and the compiled MOSFET kernel.
softdep-smoke:
	$(PY) scripts/softdep_smoke.py

# Serving-layer smoke: a live in-process server answers a cold /simulate
# (miss), its bit-identical repeat from the persistent store (hit), and
# three stalled concurrent requests as one computation (dedup); then the
# /metrics text is scraped.  Strict RuntimeWarnings inside the script.
serve-smoke:
	$(PY) scripts/serve_smoke.py

# Surrogate-tier smoke: fit a reduced model from quick golden sweeps,
# answer an in-region spec in closed form, and prove the out-of-region
# refusal routes to the full simulator with waveform parity.
surrogate-smoke:
	$(PY) scripts/surrogate_smoke.py

# Operational-health smoke: a live server answers a surrogate hit with
# the shadow audit forced on, /statusz is schema-checked, and the
# durable event journal is replayed offline through the status/events
# CLI.  Strict RuntimeWarnings inside the script.
status-smoke:
	$(PY) scripts/status_smoke.py

# Regenerate every paper artifact into benchmarks/reports/*.txt and
# the run logs the task description asks for.
reports:
	$(PY) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PY) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	for f in examples/*.py; do echo "== $$f"; $(PY) $$f || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
