# Convenience targets for the reproduction workflow.

.PHONY: install test bench reports examples clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

# Regenerate every paper artifact into benchmarks/reports/*.txt and
# the run logs the task description asks for.
reports:
	pytest tests/ 2>&1 | tee test_output.txt
	pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
